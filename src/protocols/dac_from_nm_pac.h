// Algorithm 2 run through the PAC ports of an (n,m)-PAC object — the
// task-level face of Observation 5.1(b) and the first step of Theorem 7.1's
// argument ("the (n+1,m)-PAC object can solve the (n+1)-DAC problem").
// Identical control flow to DacFromPacProtocol, with PROPOSEP/DECIDEP
// routed to the combined object.
#ifndef LBSA_PROTOCOLS_DAC_FROM_NM_PAC_H_
#define LBSA_PROTOCOLS_DAC_FROM_NM_PAC_H_

#include <memory>
#include <vector>

#include "sim/protocol.h"

namespace lbsa::protocols {

class DacFromNmPacProtocol final : public sim::ProtocolBase {
 public:
  // Solves inputs.size()-DAC using one (inputs.size(), m)-PAC object.
  DacFromNmPacProtocol(std::vector<Value> inputs, int m,
                       int distinguished_pid = 0);

  int distinguished_pid() const { return distinguished_pid_; }

  std::vector<std::int64_t> initial_locals(int pid) const override;
  sim::Action next_action(int pid, const sim::ProcessState& state)
      const override;
  void on_response(int pid, sim::ProcessState* state,
                   Value response) const override;

 private:
  static constexpr std::int64_t kInput = 0;
  static constexpr std::int64_t kTemp = 1;

  std::vector<Value> inputs_;
  int distinguished_pid_;
};

}  // namespace lbsa::protocols

#endif  // LBSA_PROTOCOLS_DAC_FROM_NM_PAC_H_
