// m-consensus through the PROPOSEC port of an (n,m)-PAC object — the
// constructive half of Theorem 5.3 via Observation 5.1(c): the consensus
// port alone solves consensus for up to m processes, for every n.
//
// Each of the p <= m processes proposes its input on the C port and decides
// the response; the backing m-consensus component returns the first proposed
// value to every proposer. This is the protocol the hierarchy sweep
// (core/hierarchy_sweep.h) explores exhaustively to certify the "level >= m"
// direction of the consensus-power table row for (n,m)-PAC.
#ifndef LBSA_PROTOCOLS_CONSENSUS_FROM_NM_PAC_H_
#define LBSA_PROTOCOLS_CONSENSUS_FROM_NM_PAC_H_

#include <vector>

#include "sim/protocol.h"

namespace lbsa::protocols {

class ConsensusFromNmPacProtocol final : public sim::ProtocolBase {
 public:
  // inputs.size() processes (1 <= inputs.size() <= m) share one
  // (n,m)-PAC object and run consensus over its PROPOSEC port.
  ConsensusFromNmPacProtocol(int n, int m, std::vector<Value> inputs);

  int n() const { return n_; }
  int m() const { return m_; }
  const std::vector<Value>& inputs() const { return inputs_; }

  std::vector<std::int64_t> initial_locals(int pid) const override;
  sim::Action next_action(int pid, const sim::ProcessState& state)
      const override;
  void on_response(int pid, sim::ProcessState* state,
                   Value response) const override;
  // Processes with equal inputs are interchangeable: locals store only
  // values, and the C-part of the (n,m)-PAC state is value-indexed (the
  // P-part stays untouched, so NmPacType::rename_pids is a no-op here).
  sim::SymmetrySpec symmetry() const override;

 private:
  // locals: [input, resp]; pc: 0 = about to propose on the C port,
  // 1 = terminal local step (decide resp).
  static constexpr std::int64_t kInput = 0;
  static constexpr std::int64_t kResp = 1;

  int n_;
  int m_;
  std::vector<Value> inputs_;
};

}  // namespace lbsa::protocols

#endif  // LBSA_PROTOCOLS_CONSENSUS_FROM_NM_PAC_H_
