// Algorithm 2 of the paper: solving the n-DAC problem with a single n-PAC
// object D (Theorem 4.1). The propose/decide/retry loop lives in
// PacPortDacProtocol; this subclass binds it to a bare n-PAC object via the
// labeled PROPOSE(v, i) / DECIDE(i) operations.
#ifndef LBSA_PROTOCOLS_DAC_FROM_PAC_H_
#define LBSA_PROTOCOLS_DAC_FROM_PAC_H_

#include <vector>

#include "protocols/dac_via_pac_port.h"

namespace lbsa::protocols {

class DacFromPacProtocol final : public PacPortDacProtocol {
 public:
  // inputs.size() == n (>= 2); distinguished_pid in [0, n).
  DacFromPacProtocol(std::vector<Value> inputs, int distinguished_pid = 0);

 protected:
  spec::Operation propose_op(Value v, std::int64_t label) const override;
  spec::Operation decide_op(std::int64_t label) const override;
};

}  // namespace lbsa::protocols

#endif  // LBSA_PROTOCOLS_DAC_FROM_PAC_H_
