#include "protocols/group_ksa.h"

#include "base/check.h"
#include "spec/consensus_type.h"

namespace lbsa::protocols {
namespace {

std::vector<std::shared_ptr<const spec::ObjectType>> make_objects(int k,
                                                                  int m) {
  std::vector<std::shared_ptr<const spec::ObjectType>> objects;
  for (int g = 0; g < k; ++g) {
    objects.push_back(std::make_shared<spec::NConsensusType>(m));
  }
  return objects;
}

}  // namespace

GroupKsaProtocol::GroupKsaProtocol(int k, int m, std::vector<Value> inputs)
    : ProtocolBase(std::to_string(k) + "-set-agreement-via-" +
                       std::to_string(k) + "x" + std::to_string(m) +
                       "-consensus",
                   static_cast<int>(inputs.size()), make_objects(k, m)),
      k_(k),
      m_(m),
      inputs_(std::move(inputs)) {
  LBSA_CHECK(k >= 1 && m >= 1);
  LBSA_CHECK(static_cast<int>(inputs_.size()) <= k * m);
  for (Value v : inputs_) LBSA_CHECK(is_ordinary(v));
}

std::vector<std::int64_t> GroupKsaProtocol::initial_locals(int pid) const {
  return {inputs_[static_cast<size_t>(pid)], kNil};
}

sim::Action GroupKsaProtocol::next_action(
    int pid, const sim::ProcessState& state) const {
  switch (state.pc) {
    case 0:
      return sim::Action::invoke(pid / m_,
                                 spec::make_propose(state.locals[0]));
    case 1:
      return sim::Action::decide(state.locals[1]);
    default:
      LBSA_CHECK_MSG(false, "invalid pc");
      return sim::Action::abort();
  }
}

void GroupKsaProtocol::on_response(int /*pid*/, sim::ProcessState* state,
                                   Value response) const {
  LBSA_CHECK(state->pc == 0);
  // Each group has at most m members, so the m-consensus object never
  // answers ⊥ here.
  LBSA_CHECK(response != kBottom);
  state->locals[1] = response;
  state->pc = 1;
}

}  // namespace lbsa::protocols
