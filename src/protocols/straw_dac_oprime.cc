#include "protocols/straw_dac_oprime.h"

#include "base/check.h"
#include "spec/oprime_type.h"

namespace lbsa::protocols {
namespace {

std::vector<std::shared_ptr<const spec::ObjectType>> make_objects(int n) {
  // O'_n truncated at k_max = 2 with the library's power entries:
  // n_1 = n, n_2 = 2n.
  return {std::make_shared<spec::OPrimeType>(std::vector<int>{n, 2 * n})};
}

}  // namespace

StrawDacOPrimeProtocol::StrawDacOPrimeProtocol(std::vector<Value> inputs)
    : ProtocolBase("straw-DAC-via-O'",
                   static_cast<int>(inputs.size()),
                   make_objects(static_cast<int>(inputs.size()) - 1)),
      inputs_(std::move(inputs)) {
  LBSA_CHECK(inputs_.size() >= 3);
}

std::vector<std::int64_t> StrawDacOPrimeProtocol::initial_locals(
    int pid) const {
  return {inputs_[static_cast<size_t>(pid)], kNil};
}

sim::Action StrawDacOPrimeProtocol::next_action(
    int /*pid*/, const sim::ProcessState& state) const {
  switch (state.pc) {
    case 0:  // race the level-1 (consensus) member
      return sim::Action::invoke(0,
                                 spec::make_propose_k(state.locals[0], 1));
    case 1:  // lost: ask the level-2 (2-set-agreement) member
      return sim::Action::invoke(0,
                                 spec::make_propose_k(state.locals[0], 2));
    case 2:
      return sim::Action::decide(state.locals[1]);
    default:
      LBSA_CHECK_MSG(false, "invalid pc");
      return sim::Action::abort();
  }
}

void StrawDacOPrimeProtocol::on_response(int /*pid*/,
                                         sim::ProcessState* state,
                                         Value response) const {
  switch (state->pc) {
    case 0:
      if (response == kBottom) {
        state->pc = 1;
      } else {
        state->locals[1] = response;
        state->pc = 2;
      }
      return;
    case 1:
      state->locals[1] = response;
      state->pc = 2;
      return;
    default:
      LBSA_CHECK_MSG(false, "response delivered at a local step");
  }
}

}  // namespace lbsa::protocols
