// Herlihy's classic consensus protocols [10] from the hierarchy's canonical
// objects — the landscape the paper's O_n / O'_n separation lives in:
//
//   * TasConsensusProtocol:   2-process consensus from one test&set bit and
//                             two registers (level 2 of the hierarchy);
//   * QueueConsensusProtocol: 2-process consensus from a FIFO queue holding
//                             one token, plus two registers (level 2);
//   * CasConsensusProtocol:   n-process consensus from one compare&swap cell
//                             (level ∞).
//
// Each also has a deliberately overloaded variant (3 processes on the
// 2-process constructions) used by the tests to show the checker exhibiting
// the classic failure — the executable face of "consensus number 2".
#ifndef LBSA_PROTOCOLS_CLASSIC_CONSENSUS_H_
#define LBSA_PROTOCOLS_CLASSIC_CONSENSUS_H_

#include <memory>
#include <vector>

#include "sim/protocol.h"

namespace lbsa::protocols {

// Two (or, for the negative demonstration, more) processes: write input to
// own register; TAS(); winner decides own input, each loser decides the
// value of the register owned by the winner-candidate it blames — for the
// 2-process case, "the other process", which is exactly Herlihy's protocol.
// With >2 processes losers cannot identify the winner and the protocol
// breaks (as it must).
class TasConsensusProtocol final : public sim::ProtocolBase {
 public:
  explicit TasConsensusProtocol(std::vector<Value> inputs);

  std::vector<std::int64_t> initial_locals(int pid) const override;
  sim::Action next_action(int pid, const sim::ProcessState& state)
      const override;
  void on_response(int pid, sim::ProcessState* state,
                   Value response) const override;

 private:
  std::vector<Value> inputs_;
};

// Queue variant: the queue initially holds one token; whoever dequeues the
// token wins.
class QueueConsensusProtocol final : public sim::ProtocolBase {
 public:
  explicit QueueConsensusProtocol(std::vector<Value> inputs);

  std::vector<std::int64_t> initial_locals(int pid) const override;
  sim::Action next_action(int pid, const sim::ProcessState& state)
      const override;
  void on_response(int pid, sim::ProcessState* state,
                   Value response) const override;

 private:
  std::vector<Value> inputs_;
};

// CAS(NIL -> input); the response is the pre-operation value: NIL means "I
// installed mine", anything else is the winner's input. Works for any n.
class CasConsensusProtocol final : public sim::ProtocolBase {
 public:
  explicit CasConsensusProtocol(std::vector<Value> inputs);

  std::vector<std::int64_t> initial_locals(int pid) const override;
  sim::Action next_action(int pid, const sim::ProcessState& state)
      const override;
  void on_response(int pid, sim::ProcessState* state,
                   Value response) const override;

 private:
  std::vector<Value> inputs_;
};

}  // namespace lbsa::protocols

#endif  // LBSA_PROTOCOLS_CLASSIC_CONSENSUS_H_
