#include "protocols/partition_propose.h"

#include "base/check.h"

namespace lbsa::protocols {

PartitionProposeProtocol::PartitionProposeProtocol(
    std::string name,
    std::vector<std::shared_ptr<const spec::ObjectType>> objects,
    std::vector<int> group_of, std::vector<spec::Operation> per_pid_ops)
    : ProtocolBase(std::move(name), static_cast<int>(group_of.size()),
                   std::move(objects)),
      group_of_(std::move(group_of)),
      ops_(std::move(per_pid_ops)) {
  LBSA_CHECK(!group_of_.empty());
  LBSA_CHECK(group_of_.size() == ops_.size());
  for (size_t pid = 0; pid < group_of_.size(); ++pid) {
    const int g = group_of_[pid];
    LBSA_CHECK(g >= 0 && static_cast<size_t>(g) < this->objects().size());
    const Status s = this->objects()[static_cast<size_t>(g)]->validate(
        ops_[pid]);
    LBSA_CHECK_MSG(s.is_ok(), s.to_string().c_str());
  }
}

std::vector<std::int64_t> PartitionProposeProtocol::initial_locals(
    int /*pid*/) const {
  return {kNil};  // [response]
}

sim::Action PartitionProposeProtocol::next_action(
    int pid, const sim::ProcessState& state) const {
  switch (state.pc) {
    case 0:
      return sim::Action::invoke(group_of_[static_cast<size_t>(pid)],
                                 ops_[static_cast<size_t>(pid)]);
    case 1:
      return sim::Action::decide(state.locals[0]);
    default:
      LBSA_CHECK_MSG(false, "invalid pc");
      return sim::Action::abort();
  }
}

void PartitionProposeProtocol::on_response(int /*pid*/,
                                           sim::ProcessState* state,
                                           Value response) const {
  LBSA_CHECK(state->pc == 0);
  state->locals[0] = response;
  state->pc = 1;
}

}  // namespace lbsa::protocols
