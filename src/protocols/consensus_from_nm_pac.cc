#include "protocols/consensus_from_nm_pac.h"

#include <memory>
#include <string>

#include "base/check.h"
#include "spec/nm_pac_type.h"

namespace lbsa::protocols {

ConsensusFromNmPacProtocol::ConsensusFromNmPacProtocol(
    int n, int m, std::vector<Value> inputs)
    : ProtocolBase("consensus-from-(" + std::to_string(n) + "," +
                       std::to_string(m) + ")-PAC",
                   static_cast<int>(inputs.size()),
                   {std::make_shared<spec::NmPacType>(n, m)}),
      n_(n),
      m_(m),
      inputs_(std::move(inputs)) {
  LBSA_CHECK(!inputs_.empty());
  LBSA_CHECK(static_cast<int>(inputs_.size()) <= m_);
  for (Value v : inputs_) LBSA_CHECK(is_ordinary(v));
}

std::vector<std::int64_t> ConsensusFromNmPacProtocol::initial_locals(
    int pid) const {
  return {inputs_[static_cast<size_t>(pid)], kNil};
}

sim::SymmetrySpec ConsensusFromNmPacProtocol::symmetry() const {
  return sim::SymmetrySpec::by_value(inputs_, {});
}

sim::Action ConsensusFromNmPacProtocol::next_action(
    int /*pid*/, const sim::ProcessState& state) const {
  switch (state.pc) {
    case 0:
      return sim::Action::invoke(0, spec::make_propose_c(state.locals[kInput]));
    case 1:
      return sim::Action::decide(state.locals[kResp]);
    default:
      LBSA_CHECK_MSG(false, "invalid pc");
      return sim::Action::abort();
  }
}

void ConsensusFromNmPacProtocol::on_response(int /*pid*/,
                                             sim::ProcessState* state,
                                             Value response) const {
  LBSA_CHECK(state->pc == 0);
  state->locals[kResp] = response;
  state->pc = 1;
}

}  // namespace lbsa::protocols
