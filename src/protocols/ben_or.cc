#include "protocols/ben_or.h"

#include "base/check.h"
#include "spec/coin_type.h"
#include "spec/register_type.h"

namespace lbsa::protocols {
namespace {

// pc states.
constexpr std::int64_t kWriteA = 0;
constexpr std::int64_t kReadA = 1;   // iterate peers with locals[kPeer]
constexpr std::int64_t kWriteB = 2;
constexpr std::int64_t kReadB = 3;
constexpr std::int64_t kDecide = 4;  // terminal local step
constexpr std::int64_t kFlip = 5;
constexpr std::int64_t kSpin = 6;    // rounds exhausted (adversarial coins)

std::vector<std::shared_ptr<const spec::ObjectType>> make_objects(
    int n, int rounds) {
  std::vector<std::shared_ptr<const spec::ObjectType>> objects;
  objects.reserve(static_cast<size_t>(2 * n * rounds) + 1);
  for (int i = 0; i < 2 * n * rounds; ++i) {
    objects.push_back(std::make_shared<spec::RegisterType>());
  }
  objects.push_back(std::make_shared<spec::CoinType>());
  return objects;
}

}  // namespace

BenOrProtocol::BenOrProtocol(std::vector<Value> inputs, int max_rounds)
    : ProtocolBase("ben-or-" + std::to_string(inputs.size()) + "p-" +
                       std::to_string(max_rounds) + "r",
                   static_cast<int>(inputs.size()),
                   make_objects(static_cast<int>(inputs.size()), max_rounds)),
      inputs_(std::move(inputs)),
      max_rounds_(max_rounds) {
  LBSA_CHECK(inputs_.size() >= 2);
  LBSA_CHECK(max_rounds >= 1);
  for (Value v : inputs_) LBSA_CHECK(v == 0 || v == 1);
}

int BenOrProtocol::a_index(std::int64_t round, int pid) const {
  const int n = process_count();
  return static_cast<int>(round) * 2 * n + pid;
}

int BenOrProtocol::b_index(std::int64_t round, int pid) const {
  const int n = process_count();
  return static_cast<int>(round) * 2 * n + n + pid;
}

int BenOrProtocol::coin_index() const {
  return 2 * process_count() * max_rounds_;
}

std::vector<std::int64_t> BenOrProtocol::initial_locals(int pid) const {
  // [v, round, peer, prop, commit_ok, adopt]
  return {inputs_[static_cast<size_t>(pid)], 0, 0, kNil, 1, kNil};
}

sim::Action BenOrProtocol::next_action(int pid,
                                       const sim::ProcessState& state) const {
  const auto& l = state.locals;
  switch (state.pc) {
    case kWriteA:
      return sim::Action::invoke(a_index(l[kRound], pid),
                                 spec::make_write(l[kV]));
    case kReadA:
      return sim::Action::invoke(
          a_index(l[kRound], static_cast<int>(l[kPeer])), spec::make_read());
    case kWriteB:
      return sim::Action::invoke(b_index(l[kRound], pid),
                                 spec::make_write(l[kProp]));
    case kReadB:
      return sim::Action::invoke(
          b_index(l[kRound], static_cast<int>(l[kPeer])), spec::make_read());
    case kDecide:
      return sim::Action::decide(l[kProp]);
    case kFlip:
      return sim::Action::invoke(coin_index(), spec::make_flip());
    case kSpin:
      // Rounds exhausted: loop forever (reachable only under adversarial
      // coin/schedule choices — the probability-0 branch).
      return sim::Action::invoke(a_index(0, pid), spec::make_read());
    default:
      LBSA_CHECK_MSG(false, "invalid pc");
      return sim::Action::abort();
  }
}

void BenOrProtocol::on_response(int pid, sim::ProcessState* state,
                                Value response) const {
  auto& l = state->locals;
  const int n = process_count();

  // Advances the peer cursor past the caller's own index; returns true when
  // all peers have been visited.
  auto advance_peer = [&]() {
    ++l[kPeer];
    if (l[kPeer] == pid) ++l[kPeer];
    return l[kPeer] >= n;
  };
  auto begin_peers = [&]() {
    l[kPeer] = (pid == 0) ? 1 : 0;
    return l[kPeer] >= n;  // true only for n == 1 (excluded by ctor)
  };

  switch (state->pc) {
    case kWriteA:
      LBSA_CHECK(response == kDone);
      l[kProp] = l[kV];
      begin_peers();
      state->pc = kReadA;
      return;

    case kReadA:
      if (response != kNil && response != l[kV]) l[kProp] = kConflict;
      if (advance_peer()) {
        state->pc = kWriteB;
      }
      return;

    case kWriteB:
      LBSA_CHECK(response == kDone);
      l[kCommitOk] = 1;
      l[kAdopt] = kNil;
      begin_peers();
      state->pc = kReadB;
      return;

    case kReadB: {
      if (response != kNil) {
        if (response != l[kProp]) l[kCommitOk] = 0;
        if (response != kConflict) l[kAdopt] = response;
      }
      if (!advance_peer()) return;
      // Phase 2 complete: resolve the round.
      if (l[kProp] != kConflict && l[kCommitOk] == 1) {
        state->pc = kDecide;
        return;
      }
      if (l[kProp] != kConflict) {
        l[kV] = l[kProp];
      } else if (l[kAdopt] != kNil) {
        l[kV] = l[kAdopt];
      } else {
        state->pc = kFlip;
        return;
      }
      ++l[kRound];
      state->pc = (l[kRound] >= max_rounds_) ? kSpin : kWriteA;
      return;
    }

    case kFlip:
      LBSA_CHECK(response == 0 || response == 1);
      l[kV] = response;
      ++l[kRound];
      state->pc = (l[kRound] >= max_rounds_) ? kSpin : kWriteA;
      return;

    case kSpin:
      return;  // keep spinning

    default:
      LBSA_CHECK_MSG(false, "response delivered at a local step");
  }
}

}  // namespace lbsa::protocols
