// The classic "partition" lower bound for set agreement from consensus
// objects (Chaudhuri-Reiners [6], Borowsky-Gafni [2]): k-set agreement among
// k*m processes using k independent m-consensus objects. Process pid joins
// group pid / m and runs consensus within its group; since every group
// decides one value and there are k groups, at most k distinct values are
// decided.
//
// This protocol realizes every finite lower-bound entry of the set agreement
// power sequences discussed in Section 6: an object with consensus number m
// yields n_k >= k*m.
#ifndef LBSA_PROTOCOLS_GROUP_KSA_H_
#define LBSA_PROTOCOLS_GROUP_KSA_H_

#include <memory>
#include <vector>

#include "sim/protocol.h"

namespace lbsa::protocols {

class GroupKsaProtocol final : public sim::ProtocolBase {
 public:
  // inputs.size() must be <= k*m; process pid proposes to consensus object
  // pid / m (groups may be ragged if inputs.size() < k*m).
  GroupKsaProtocol(int k, int m, std::vector<Value> inputs);

  int k() const { return k_; }
  int m() const { return m_; }

  std::vector<std::int64_t> initial_locals(int pid) const override;
  sim::Action next_action(int pid, const sim::ProcessState& state)
      const override;
  void on_response(int pid, sim::ProcessState* state,
                   Value response) const override;

 private:
  int k_;
  int m_;
  std::vector<Value> inputs_;
};

}  // namespace lbsa::protocols

#endif  // LBSA_PROTOCOLS_GROUP_KSA_H_
