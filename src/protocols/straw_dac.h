// Straw-man candidates for the (n+1)-DAC problem built from exactly the
// object families Theorem 4.2 rules out: n-consensus objects, registers, and
// strong 2-SA objects.
//
// Theorem 4.2 quantifies over all algorithms, so no finite set of candidates
// can prove it; these protocols serve the complementary, checkable purpose
// (experiment E3 in DESIGN.md): each is a natural attempt, and the model
// checker mechanically exhibits the failure mode the proof predicts —
// agreement breaks when the overflow proposer falls back to a 2-SA object,
// and termination breaks when it waits for an announcement instead.
// Contrast with DacFromPacProtocol (Algorithm 2), which passes every check.
#ifndef LBSA_PROTOCOLS_STRAW_DAC_H_
#define LBSA_PROTOCOLS_STRAW_DAC_H_

#include <memory>
#include <vector>

#include "sim/protocol.h"

namespace lbsa::protocols {

// Candidate 1 — "fall back to 2-SA": all n+1 processes propose to one
// n-consensus object X; whoever receives ⊥ (the (n+1)-th proposer) proposes
// to a 2-SA object S instead and decides S's response. Fails Agreement: S
// may return a value different from X's winner.
class StrawDacFallbackProtocol final : public sim::ProtocolBase {
 public:
  explicit StrawDacFallbackProtocol(std::vector<Value> inputs);

  std::vector<std::int64_t> initial_locals(int pid) const override;
  sim::Action next_action(int pid, const sim::ProcessState& state)
      const override;
  void on_response(int pid, sim::ProcessState* state,
                   Value response) const override;
  // The automaton ignores pid entirely, so equal inputs suffice.
  sim::SymmetrySpec symmetry() const override {
    return sim::SymmetrySpec::by_value(inputs_);
  }

 private:
  std::vector<Value> inputs_;
};

// Candidate 2 — "wait for an announcement": all n+1 processes propose to X;
// winners write their decision to an announce register A before deciding;
// the ⊥-receiver spins reading A until it is non-NIL. Fails Termination:
// the ⊥-receiver running solo spins forever.
class StrawDacAnnounceProtocol final : public sim::ProtocolBase {
 public:
  explicit StrawDacAnnounceProtocol(std::vector<Value> inputs);

  std::vector<std::int64_t> initial_locals(int pid) const override;
  sim::Action next_action(int pid, const sim::ProcessState& state)
      const override;
  void on_response(int pid, sim::ProcessState* state,
                   Value response) const override;
  // The automaton ignores pid entirely, so equal inputs suffice.
  sim::SymmetrySpec symmetry() const override {
    return sim::SymmetrySpec::by_value(inputs_);
  }

 private:
  std::vector<Value> inputs_;
};

}  // namespace lbsa::protocols

#endif  // LBSA_PROTOCOLS_STRAW_DAC_H_
