// Straw-man (n+1)-DAC candidate over one O'_n object and registers — the
// combination Theorem 6.5 proves cannot work ("O_n cannot be implemented by
// O'_n objects and registers"; if O'_n could drive (n+1)-DAC, composing
// with Lemma 6.4 would contradict Theorem 4.2).
//
// The natural attempt mirrors StrawDacFallbackProtocol, but every object
// access goes through the O' interface: race the level-1 member
// ((n,1)-SA = n-consensus); the overflow proposer falls back to the level-2
// member ((n_2,2)-SA). The model checker exhibits the agreement violation.
#ifndef LBSA_PROTOCOLS_STRAW_DAC_OPRIME_H_
#define LBSA_PROTOCOLS_STRAW_DAC_OPRIME_H_

#include <memory>
#include <vector>

#include "sim/protocol.h"

namespace lbsa::protocols {

class StrawDacOPrimeProtocol final : public sim::ProtocolBase {
 public:
  // inputs.size() == n + 1 processes over one O'_n object (k_max = 2).
  explicit StrawDacOPrimeProtocol(std::vector<Value> inputs);

  std::vector<std::int64_t> initial_locals(int pid) const override;
  sim::Action next_action(int pid, const sim::ProcessState& state)
      const override;
  void on_response(int pid, sim::ProcessState* state,
                   Value response) const override;

 private:
  std::vector<Value> inputs_;
};

}  // namespace lbsa::protocols

#endif  // LBSA_PROTOCOLS_STRAW_DAC_OPRIME_H_
