#include "protocols/straw_dac.h"

#include "base/check.h"
#include "spec/consensus_type.h"
#include "spec/ksa_type.h"
#include "spec/register_type.h"

namespace lbsa::protocols {
namespace {

constexpr std::int64_t kInput = 0;
constexpr std::int64_t kResult = 1;

}  // namespace

// --------------------------- StrawDacFallbackProtocol ----------------------

StrawDacFallbackProtocol::StrawDacFallbackProtocol(std::vector<Value> inputs)
    : ProtocolBase(
          "straw-DAC-fallback",
          static_cast<int>(inputs.size()),
          {std::make_shared<spec::NConsensusType>(
               static_cast<int>(inputs.size()) - 1),
           std::make_shared<spec::KsaType>(spec::kUnboundedPorts, 2)}),
      inputs_(std::move(inputs)) {
  LBSA_CHECK(inputs_.size() >= 3);  // n >= 2, so n+1 >= 3 processes
}

std::vector<std::int64_t> StrawDacFallbackProtocol::initial_locals(
    int pid) const {
  return {inputs_[static_cast<size_t>(pid)], kNil};
}

sim::Action StrawDacFallbackProtocol::next_action(
    int /*pid*/, const sim::ProcessState& state) const {
  switch (state.pc) {
    case 0:  // propose input to the n-consensus object X
      return sim::Action::invoke(0, spec::make_propose(state.locals[kInput]));
    case 1:  // overflow: propose input to the 2-SA object S
      return sim::Action::invoke(1, spec::make_propose(state.locals[kInput]));
    case 2:
      return sim::Action::decide(state.locals[kResult]);
    default:
      LBSA_CHECK_MSG(false, "invalid pc");
      return sim::Action::abort();
  }
}

void StrawDacFallbackProtocol::on_response(int /*pid*/,
                                           sim::ProcessState* state,
                                           Value response) const {
  switch (state->pc) {
    case 0:
      if (response == kBottom) {
        state->pc = 1;  // lost the race for X's n ports
      } else {
        state->locals[kResult] = response;
        state->pc = 2;
      }
      return;
    case 1:
      state->locals[kResult] = response;
      state->pc = 2;
      return;
    default:
      LBSA_CHECK_MSG(false, "response delivered at a local step");
  }
}

// --------------------------- StrawDacAnnounceProtocol ----------------------

StrawDacAnnounceProtocol::StrawDacAnnounceProtocol(std::vector<Value> inputs)
    : ProtocolBase(
          "straw-DAC-announce",
          static_cast<int>(inputs.size()),
          {std::make_shared<spec::NConsensusType>(
               static_cast<int>(inputs.size()) - 1),
           std::make_shared<spec::RegisterType>()}),
      inputs_(std::move(inputs)) {
  LBSA_CHECK(inputs_.size() >= 3);
}

std::vector<std::int64_t> StrawDacAnnounceProtocol::initial_locals(
    int pid) const {
  return {inputs_[static_cast<size_t>(pid)], kNil};
}

sim::Action StrawDacAnnounceProtocol::next_action(
    int /*pid*/, const sim::ProcessState& state) const {
  switch (state.pc) {
    case 0:  // propose input to X
      return sim::Action::invoke(0, spec::make_propose(state.locals[kInput]));
    case 1:  // announce the won value in register A
      return sim::Action::invoke(1, spec::make_write(state.locals[kResult]));
    case 2:
      return sim::Action::decide(state.locals[kResult]);
    case 3:  // spin on A until someone announces
      return sim::Action::invoke(1, spec::make_read());
    default:
      LBSA_CHECK_MSG(false, "invalid pc");
      return sim::Action::abort();
  }
}

void StrawDacAnnounceProtocol::on_response(int /*pid*/,
                                           sim::ProcessState* state,
                                           Value response) const {
  switch (state->pc) {
    case 0:
      if (response == kBottom) {
        state->pc = 3;
      } else {
        state->locals[kResult] = response;
        state->pc = 1;
      }
      return;
    case 1:
      LBSA_CHECK(response == kDone);
      state->pc = 2;
      return;
    case 3:
      if (response == kNil) {
        state->pc = 3;  // keep spinning
      } else {
        state->locals[kResult] = response;
        state->pc = 2;
      }
      return;
    default:
      LBSA_CHECK_MSG(false, "response delivered at a local step");
  }
}

}  // namespace lbsa::protocols
