// The consensus hierarchy as a queryable catalog: every object family the
// library ships, its hierarchy level (consensus number), and its power
// sequence factory — the atlas behind examples/hierarchy_atlas.cpp and the
// comparison surface for the paper's O_n / O'_n pair.
#ifndef LBSA_CORE_HIERARCHY_H_
#define LBSA_CORE_HIERARCHY_H_

#include <optional>
#include <string>
#include <vector>

#include "core/power.h"

namespace lbsa::core {

// Hierarchy level; kLevelInfinity for universal objects.
inline constexpr std::int64_t kLevelInfinity = -1;

struct HierarchyEntry {
  std::string family;          // e.g. "n-PAC", "O_n", "test&set"
  std::string instance;        // concrete rendering at the given parameter
  std::int64_t level = 1;      // consensus number (kLevelInfinity = ∞)
  std::string level_source;    // theorem / citation for the level
  SetAgreementPower power;     // power-sequence prefix
};

// The parameterized (n,m)-PAC family entry at (n, m): level m (Theorem 5.3,
// regardless of n). The hierarchy sweep (core/hierarchy_sweep.h) cross-checks
// its machine-checked verdict for every (n, m) against this declaration.
HierarchyEntry nm_pac_entry(int n, int m, int k_max);

// The catalog at parameter n (>= 2), power prefixes up to k_max (>= 1).
// Families included: register, 2-SA, test&set, queue, n-consensus,
// (n,m)-PAC (at the (n+1, n) instance), O_n, O'_n, compare&swap. O_n is by
// definition the (n+1, n)-PAC object, so those two rows carry the same
// power values under different names and citations.
std::vector<HierarchyEntry> hierarchy_catalog(int n, int k_max);

// Entries of the catalog at exactly `level` (kLevelInfinity for ∞).
std::vector<HierarchyEntry> entries_at_level(int n, int k_max,
                                             std::int64_t level);

// Looks up a family by name in hierarchy_catalog(n, k_max).
std::optional<HierarchyEntry> find_family(int n, int k_max,
                                          const std::string& family);

}  // namespace lbsa::core

#endif  // LBSA_CORE_HIERARCHY_H_
