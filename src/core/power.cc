#include "core/power.h"

#include "base/check.h"
#include "spec/ksa_type.h"

namespace lbsa::core {

SetAgreementPower::SetAgreementPower(std::string object_name,
                                     std::vector<PowerEntry> prefix)
    : object_name_(std::move(object_name)), entries_(std::move(prefix)) {
  LBSA_CHECK(!entries_.empty());
  for (const PowerEntry& e : entries_) {
    LBSA_CHECK(e.value == kInfinitePower || e.value >= 1);
  }
}

const PowerEntry& SetAgreementPower::entry(int k) const {
  LBSA_CHECK(k >= 1 && k <= k_max());
  return entries_[static_cast<size_t>(k - 1)];
}

std::int64_t SetAgreementPower::consensus_number() const {
  const PowerEntry& e = entry(1);
  LBSA_CHECK_MSG(e.provenance == PowerEntry::Provenance::kExact,
                 "consensus number entry is not exact");
  return e.value;
}

bool SetAgreementPower::values_equal(const SetAgreementPower& other) const {
  const int shared = std::min(k_max(), other.k_max());
  for (int k = 1; k <= shared; ++k) {
    if (entry(k).value != other.entry(k).value) return false;
  }
  return true;
}

std::vector<int> SetAgreementPower::port_bounds() const {
  std::vector<int> bounds;
  bounds.reserve(entries_.size());
  for (const PowerEntry& e : entries_) {
    bounds.push_back(e.infinite() ? spec::kUnboundedPorts
                                  : static_cast<int>(e.value));
  }
  return bounds;
}

std::string SetAgreementPower::to_string() const {
  std::string out = object_name_ + ": (";
  for (int k = 1; k <= k_max(); ++k) {
    if (k > 1) out += ", ";
    const PowerEntry& e = entry(k);
    out += e.infinite() ? "∞" : std::to_string(e.value);
    if (e.provenance == PowerEntry::Provenance::kLowerBound) out += "+";
  }
  out += ", ...)";
  return out;
}

namespace {

PowerEntry exact(std::int64_t value, std::string source) {
  return PowerEntry{value, PowerEntry::Provenance::kExact, std::move(source)};
}

PowerEntry lower_bound(std::int64_t value, std::string source) {
  return PowerEntry{value, PowerEntry::Provenance::kLowerBound,
                    std::move(source)};
}

}  // namespace

SetAgreementPower power_of_register(int k_max) {
  LBSA_CHECK(k_max >= 1);
  std::vector<PowerEntry> entries;
  entries.push_back(exact(1, "Herlihy [10]: registers have consensus number 1"));
  for (int k = 2; k <= k_max; ++k) {
    entries.push_back(exact(
        k, "wait-free k-set agreement among k is trivial, among k+1 "
           "impossible [BG93/HS99/SZ00]"));
  }
  return SetAgreementPower("register", std::move(entries));
}

SetAgreementPower power_of_n_consensus(int m, int k_max) {
  LBSA_CHECK(m >= 1 && k_max >= 1);
  std::vector<PowerEntry> entries;
  entries.push_back(exact(m, "footnote 6: the m-consensus object"));
  for (int k = 2; k <= k_max; ++k) {
    entries.push_back(exact(
        static_cast<std::int64_t>(k) * m,
        "partition protocol gives k*m; tight by Chaudhuri-Reiners [6]"));
  }
  return SetAgreementPower(std::to_string(m) + "-consensus",
                           std::move(entries));
}

SetAgreementPower power_of_two_sa(int k_max) {
  LBSA_CHECK(k_max >= 1);
  std::vector<PowerEntry> entries;
  entries.push_back(exact(
      1, "an own-value adversary makes 2-SA useless for 2-process consensus; "
         "register-only consensus is impossible [8]"));
  for (int k = 2; k <= k_max; ++k) {
    entries.push_back(exact(
        kInfinitePower,
        "Algorithm 3 solves k-set agreement among any finite number"));
  }
  return SetAgreementPower("2-SA", std::move(entries));
}

SetAgreementPower power_of_nm_pac(int n, int m, int k_max) {
  LBSA_CHECK(n >= 2 && m >= 1 && m <= n && k_max >= 1);
  std::vector<PowerEntry> entries;
  entries.push_back(exact(
      m, "Theorem 5.3: the (n,m)-PAC object is at level m regardless of n"));
  for (int k = 2; k <= k_max; ++k) {
    entries.push_back(lower_bound(
        static_cast<std::int64_t>(k) * m,
        "partition protocol over the object's m-consensus port; exact value "
        "not computed in the paper"));
  }
  return SetAgreementPower(
      "(" + std::to_string(n) + "," + std::to_string(m) + ")-PAC",
      std::move(entries));
}

SetAgreementPower power_of_o_n(int n, int k_max) {
  LBSA_CHECK(n >= 2 && k_max >= 1);
  // O_n = (n+1, n)-PAC (Definition 6.1): same sequence, renamed, with the
  // consensus-number citation widened to the O_n-specific observation.
  const SetAgreementPower base = power_of_nm_pac(n + 1, n, k_max);
  std::vector<PowerEntry> entries;
  entries.push_back(
      exact(n, "Theorem 5.3 / Observation 6.2: O_n is at level n"));
  for (int k = 2; k <= base.k_max(); ++k) {
    PowerEntry e = base.entry(k);
    e.source =
        "partition protocol over O_n's n-consensus port; exact value not "
        "computed in the paper";
    entries.push_back(std::move(e));
  }
  return SetAgreementPower("O_" + std::to_string(n), std::move(entries));
}

SetAgreementPower power_of_test_and_set(int k_max) {
  LBSA_CHECK(k_max >= 1);
  std::vector<PowerEntry> entries;
  entries.push_back(exact(2, "Herlihy [10]: test&set has consensus number 2"));
  for (int k = 2; k <= k_max; ++k) {
    entries.push_back(exact(
        2LL * k,
        "test&set is equivalent to a 2-consensus object, whose n_k = 2k "
        "is tight by Chaudhuri-Reiners [6]"));
  }
  return SetAgreementPower("test&set", std::move(entries));
}

SetAgreementPower power_of_queue(int k_max) {
  LBSA_CHECK(k_max >= 1);
  std::vector<PowerEntry> entries;
  entries.push_back(exact(2, "Herlihy [10]: FIFO queues have consensus "
                             "number 2"));
  for (int k = 2; k <= k_max; ++k) {
    entries.push_back(lower_bound(
        2LL * k, "partition protocol with queue-based 2-consensus groups"));
  }
  return SetAgreementPower("queue", std::move(entries));
}

SetAgreementPower power_of_compare_and_swap(int k_max) {
  LBSA_CHECK(k_max >= 1);
  std::vector<PowerEntry> entries;
  entries.push_back(exact(kInfinitePower,
                          "Herlihy [10]: compare&swap is universal"));
  for (int k = 2; k <= k_max; ++k) {
    entries.push_back(exact(kInfinitePower, "dominated by n_1 = ∞"));
  }
  return SetAgreementPower("compare&swap", std::move(entries));
}

SetAgreementPower power_of_o_prime_n(int n, int k_max) {
  SetAgreementPower base = power_of_o_n(n, k_max);
  std::vector<PowerEntry> entries;
  for (int k = 1; k <= base.k_max(); ++k) {
    PowerEntry e = base.entry(k);
    e.source = "by construction, O'_n embodies the power of O_n (Section 6)";
    entries.push_back(std::move(e));
  }
  return SetAgreementPower("O'_" + std::to_string(n), std::move(entries));
}

}  // namespace lbsa::core
