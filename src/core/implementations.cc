#include "core/implementations.h"

#include "base/check.h"
#include "core/power.h"
#include "core/separation.h"
#include "spec/consensus_type.h"
#include "spec/counter_type.h"
#include "spec/ksa_type.h"
#include "spec/nm_pac_type.h"
#include "spec/pac_type.h"
#include "spec/register_type.h"

namespace lbsa::core {
namespace {

using implcheck::DirectRoutingImplementation;
using implcheck::ImplAction;
using implcheck::ObjectImplementation;
using implcheck::OpExecState;

// --------------------------------------------------------------------------
// Multi-step control implementations.
// --------------------------------------------------------------------------

// fetch-and-add(delta) = { old <- READ(R); WRITE(R, old + delta); return old }
// — the classic lost-update bug.
class RacyCounterImpl final : public ObjectImplementation {
 public:
  RacyCounterImpl()
      : target_(std::make_shared<spec::CounterType>()),
        bases_{std::make_shared<spec::RegisterType>(0)} {}

  std::string name() const override { return "racy-counter-from-register"; }
  const spec::ObjectType& target_type() const override { return *target_; }
  const std::vector<std::shared_ptr<const spec::ObjectType>>& base_objects()
      const override {
    return bases_;
  }

  OpExecState begin(const spec::Operation& /*op*/) const override {
    return OpExecState{0, {kNil}};
  }

  ImplAction next_action(const spec::Operation& op,
                         const OpExecState& state) const override {
    if (op.code == spec::OpCode::kRead) {
      if (state.pc == 0) return ImplAction::base(0, spec::make_read());
      return ImplAction::ret(state.locals[0]);
    }
    LBSA_CHECK(op.code == spec::OpCode::kPropose);  // fetch-and-add
    switch (state.pc) {
      case 0:
        return ImplAction::base(0, spec::make_read());
      case 1:
        return ImplAction::base(
            0, spec::make_write(state.locals[0] + op.arg0));
      default:
        return ImplAction::ret(state.locals[0]);
    }
  }

  void on_response(const spec::Operation& /*op*/, OpExecState* state,
                   Value response) const override {
    if (state->pc == 0) state->locals[0] = response;  // the read
    ++state->pc;
  }

 private:
  std::shared_ptr<const spec::ObjectType> target_;
  std::vector<std::shared_ptr<const spec::ObjectType>> bases_;
};

// read = { READ(R); v <- READ(R); return v }; write = { WRITE(R, v) }.
class DoubleReadRegisterImpl final : public ObjectImplementation {
 public:
  DoubleReadRegisterImpl()
      : target_(std::make_shared<spec::RegisterType>()),
        bases_{std::make_shared<spec::RegisterType>()} {}

  std::string name() const override { return "double-read-register"; }
  const spec::ObjectType& target_type() const override { return *target_; }
  const std::vector<std::shared_ptr<const spec::ObjectType>>& base_objects()
      const override {
    return bases_;
  }

  OpExecState begin(const spec::Operation& /*op*/) const override {
    return OpExecState{0, {kNil}};
  }

  ImplAction next_action(const spec::Operation& op,
                         const OpExecState& state) const override {
    if (op.code == spec::OpCode::kWrite) {
      if (state.pc == 0) return ImplAction::base(0, op);
      return ImplAction::ret(kDone);
    }
    LBSA_CHECK(op.code == spec::OpCode::kRead);
    if (state.pc <= 1) return ImplAction::base(0, spec::make_read());
    return ImplAction::ret(state.locals[0]);
  }

  void on_response(const spec::Operation& op, OpExecState* state,
                   Value response) const override {
    if (op.code == spec::OpCode::kRead && state->pc == 1) {
      state->locals[0] = response;  // keep the second read
    }
    ++state->pc;
  }

 private:
  std::shared_ptr<const spec::ObjectType> target_;
  std::vector<std::shared_ptr<const spec::ObjectType>> bases_;
};

}  // namespace

std::unique_ptr<implcheck::ObjectImplementation> make_nm_pac_from_components(
    int n, int m) {
  auto target = std::make_shared<spec::NmPacType>(n, m);
  std::vector<std::shared_ptr<const spec::ObjectType>> bases = {
      std::make_shared<spec::PacType>(n),
      std::make_shared<spec::NConsensusType>(m)};
  return std::make_unique<DirectRoutingImplementation>(
      "(n,m)-PAC-from-components", target, std::move(bases),
      [](const spec::Operation& op) -> std::pair<int, spec::Operation> {
        switch (op.code) {
          case spec::OpCode::kProposeC:
            return {1, spec::make_propose(op.arg0)};
          case spec::OpCode::kProposeP:
            return {0, spec::make_propose_labeled(op.arg0, op.arg1)};
          case spec::OpCode::kDecideP:
            return {0, spec::make_decide_labeled(op.arg0)};
          default:
            LBSA_CHECK_MSG(false, "not an (n,m)-PAC op");
            return {0, op};
        }
      });
}

std::unique_ptr<implcheck::ObjectImplementation> make_pac_from_nm_pac(int n,
                                                                      int m) {
  auto target = std::make_shared<spec::PacType>(n);
  std::vector<std::shared_ptr<const spec::ObjectType>> bases = {
      std::make_shared<spec::NmPacType>(n, m)};
  return std::make_unique<DirectRoutingImplementation>(
      "n-PAC-from-(n,m)-PAC", target, std::move(bases),
      [](const spec::Operation& op) -> std::pair<int, spec::Operation> {
        if (op.code == spec::OpCode::kProposeLabeled) {
          return {0, spec::make_propose_p(op.arg0, op.arg1)};
        }
        LBSA_CHECK(op.code == spec::OpCode::kDecideLabeled);
        return {0, spec::make_decide_p(op.arg0)};
      });
}

std::unique_ptr<implcheck::ObjectImplementation> make_consensus_from_nm_pac(
    int n, int m) {
  auto target = std::make_shared<spec::NConsensusType>(m);
  std::vector<std::shared_ptr<const spec::ObjectType>> bases = {
      std::make_shared<spec::NmPacType>(n, m)};
  return std::make_unique<DirectRoutingImplementation>(
      "m-consensus-from-(n,m)-PAC", target, std::move(bases),
      [](const spec::Operation& op) -> std::pair<int, spec::Operation> {
        LBSA_CHECK(op.code == spec::OpCode::kPropose);
        return {0, spec::make_propose_c(op.arg0)};
      });
}

std::unique_ptr<implcheck::ObjectImplementation> make_o_prime_from_base_impl(
    int n, int k_max) {
  auto target = make_o_prime_n(n, k_max);
  const std::vector<int> bounds = power_of_o_n(n, k_max).port_bounds();
  std::vector<std::shared_ptr<const spec::ObjectType>> bases;
  bases.push_back(std::make_shared<spec::NConsensusType>(bounds[0]));
  for (int k = 2; k <= k_max; ++k) {
    bases.push_back(std::make_shared<spec::KsaType>(
        bounds[static_cast<size_t>(k - 1)], 2));
  }
  return std::make_unique<DirectRoutingImplementation>(
      "O'-from-base (Lemma 6.4)", target, std::move(bases),
      [](const spec::Operation& op) -> std::pair<int, spec::Operation> {
        LBSA_CHECK(op.code == spec::OpCode::kProposeK);
        return {static_cast<int>(op.arg1) - 1, spec::make_propose(op.arg0)};
      });
}

std::unique_ptr<implcheck::ObjectImplementation> make_broken_o_prime_impl(
    int n, int k_max) {
  auto target = make_o_prime_n(n, k_max);
  const std::vector<int> bounds = power_of_o_n(n, k_max).port_bounds();
  std::vector<std::shared_ptr<const spec::ObjectType>> bases;
  // Level 1 wrongly backed by a 2-SA (consensus needs... consensus).
  bases.push_back(std::make_shared<spec::KsaType>(bounds[0], 2));
  for (int k = 2; k <= k_max; ++k) {
    bases.push_back(std::make_shared<spec::KsaType>(
        bounds[static_cast<size_t>(k - 1)], 2));
  }
  return std::make_unique<DirectRoutingImplementation>(
      "broken-O'-from-base", target, std::move(bases),
      [](const spec::Operation& op) -> std::pair<int, spec::Operation> {
        LBSA_CHECK(op.code == spec::OpCode::kProposeK);
        return {static_cast<int>(op.arg1) - 1, spec::make_propose(op.arg0)};
      });
}

std::unique_ptr<implcheck::ObjectImplementation> make_racy_counter_impl() {
  return std::make_unique<RacyCounterImpl>();
}

std::unique_ptr<implcheck::ObjectImplementation>
make_double_read_register_impl() {
  return std::make_unique<DoubleReadRegisterImpl>();
}

}  // namespace lbsa::core
