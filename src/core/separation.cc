#include "core/separation.h"

#include "base/check.h"

namespace lbsa::core {

std::shared_ptr<const spec::NmPacType> make_o_n(int n) {
  LBSA_CHECK(n >= 2);
  return std::make_shared<spec::NmPacType>(n + 1, n);
}

std::shared_ptr<const spec::OPrimeType> make_o_prime_n(int n, int k_max) {
  return std::make_shared<spec::OPrimeType>(
      power_of_o_n(n, k_max).port_bounds());
}

std::shared_ptr<const spec::OPrimeType> make_o_prime_from_base(int n,
                                                               int k_max) {
  const std::vector<int> bounds = power_of_o_n(n, k_max).port_bounds();
  std::vector<spec::KsaType> members;
  members.emplace_back(bounds[0], 1);  // (n_1,1)-SA == n-consensus
  for (int k = 2; k <= k_max; ++k) {
    // A 2-SA object, port-bounded to n_k: stronger than the (n_k,k)-SA spec
    // member (it returns at most 2 distinct values instead of k), so every
    // history is spec-legal.
    members.emplace_back(bounds[static_cast<size_t>(k - 1)], 2);
  }
  return std::make_shared<spec::OPrimeType>(std::move(members));
}

OPrimeFromBaseObject::OPrimeFromBaseObject(
    int n, int k_max, concurrent::TwoSaSelection selection)
    : spec_(make_o_prime_n(n, k_max)),
      level1_(static_cast<int>(power_of_o_n(n, k_max).entry(1).value)) {
  const std::vector<int> bounds = power_of_o_n(n, k_max).port_bounds();
  for (int k = 2; k <= k_max; ++k) {
    higher_levels_.push_back(std::make_unique<concurrent::AtomicTwoSa>(
        bounds[static_cast<size_t>(k - 1)], selection));
  }
}

Value OPrimeFromBaseObject::apply(const spec::Operation& op) {
  LBSA_CHECK(spec_->validate(op).is_ok());
  const int level = static_cast<int>(op.arg1);
  if (level == 1) return level1_.propose(op.arg0);
  return higher_levels_[static_cast<size_t>(level - 2)]->propose(op.arg0);
}

}  // namespace lbsa::core
