#include "core/solvability.h"

#include "base/check.h"
#include "core/separation.h"
#include "protocols/partition_propose.h"
#include "spec/consensus_type.h"
#include "spec/ksa_type.h"

namespace lbsa::core {
namespace {

std::vector<Value> iota_inputs(int n) {
  std::vector<Value> inputs;
  for (int i = 0; i < n; ++i) inputs.push_back(1000 + i);
  return inputs;
}

}  // namespace

const char* object_family_name(ObjectFamily family) {
  switch (family) {
    case ObjectFamily::kNConsensus:
      return "n-consensus";
    case ObjectFamily::kTwoSa:
      return "2-SA";
    case ObjectFamily::kOn:
      return "O_n";
    case ObjectFamily::kOPrime:
      return "O'_n";
    case ObjectFamily::kOPrimeFromBase:
      return "O'_n-from-base";
  }
  return "unknown";
}

StatusOr<modelcheck::TaskReport> witness_k_agreement(
    ObjectFamily family, int param, int k, int num_procs,
    const modelcheck::TaskCheckOptions& options) {
  LBSA_CHECK(k >= 1 && num_procs >= 1);
  const std::vector<Value> inputs = iota_inputs(num_procs);

  std::vector<std::shared_ptr<const spec::ObjectType>> objects;
  std::vector<int> group_of(static_cast<size_t>(num_procs), 0);
  std::vector<spec::Operation> ops;

  switch (family) {
    case ObjectFamily::kNConsensus: {
      if (num_procs > k * param) {
        return invalid_argument(
            "partition witness needs num_procs <= k * m");
      }
      const int groups = (num_procs + param - 1) / param;
      for (int g = 0; g < groups; ++g) {
        objects.push_back(std::make_shared<spec::NConsensusType>(param));
      }
      for (int pid = 0; pid < num_procs; ++pid) {
        group_of[static_cast<size_t>(pid)] = pid / param;
        ops.push_back(spec::make_propose(inputs[static_cast<size_t>(pid)]));
      }
      break;
    }
    case ObjectFamily::kTwoSa: {
      if (k < 2) {
        return invalid_argument("2-SA witnesses only k >= 2");
      }
      objects.push_back(
          std::make_shared<spec::KsaType>(spec::kUnboundedPorts, 2));
      for (int pid = 0; pid < num_procs; ++pid) {
        ops.push_back(spec::make_propose(inputs[static_cast<size_t>(pid)]));
      }
      break;
    }
    case ObjectFamily::kOn: {
      // k-set agreement among k*n via the n-consensus (PROPOSEC) port of k
      // O_n instances.
      if (num_procs > k * param) {
        return invalid_argument(
            "partition witness needs num_procs <= k * n");
      }
      const int groups = (num_procs + param - 1) / param;
      for (int g = 0; g < groups; ++g) {
        objects.push_back(make_o_n(param));
      }
      for (int pid = 0; pid < num_procs; ++pid) {
        group_of[static_cast<size_t>(pid)] = pid / param;
        ops.push_back(
            spec::make_propose_c(inputs[static_cast<size_t>(pid)]));
      }
      break;
    }
    case ObjectFamily::kOPrime:
    case ObjectFamily::kOPrimeFromBase: {
      // One bundle object; everyone proposes at level k. The level's port
      // bound is k * param (power_of_o_n's witnessed entry).
      if (num_procs > k * param) {
        return invalid_argument("O' level-k witness needs num_procs <= n_k");
      }
      objects.push_back(family == ObjectFamily::kOPrime
                            ? std::static_pointer_cast<const spec::ObjectType>(
                                  make_o_prime_n(param, k))
                            : std::static_pointer_cast<const spec::ObjectType>(
                                  make_o_prime_from_base(param, k)));
      for (int pid = 0; pid < num_procs; ++pid) {
        ops.push_back(
            spec::make_propose_k(inputs[static_cast<size_t>(pid)], k));
      }
      break;
    }
  }

  auto protocol = std::make_shared<protocols::PartitionProposeProtocol>(
      std::string("witness-") + object_family_name(family) + "-k" +
          std::to_string(k) + "-n" + std::to_string(num_procs),
      std::move(objects), std::move(group_of), std::move(ops));
  return modelcheck::check_k_agreement_task(protocol, k, inputs, options);
}

}  // namespace lbsa::core
