// The paper's constructive implementation claims as checkable
// implcheck::ObjectImplementation instances, plus control cases that prove
// the checker has teeth (a deliberately broken bundle and a racy read-
// modify-write that must fail).
#ifndef LBSA_CORE_IMPLEMENTATIONS_H_
#define LBSA_CORE_IMPLEMENTATIONS_H_

#include <memory>

#include "implcheck/implementation.h"

namespace lbsa::core {

// Observation 5.1(a): an (n,m)-PAC from one n-PAC and one m-consensus
// object (pure routing).
std::unique_ptr<implcheck::ObjectImplementation> make_nm_pac_from_components(
    int n, int m);

// Observation 5.1(b): an n-PAC from one (n,m)-PAC (PROPOSEP/DECIDEP ports).
std::unique_ptr<implcheck::ObjectImplementation> make_pac_from_nm_pac(int n,
                                                                      int m);

// Observation 5.1(c): an m-consensus object from one (n,m)-PAC (PROPOSEC).
std::unique_ptr<implcheck::ObjectImplementation> make_consensus_from_nm_pac(
    int n, int m);

// Lemma 6.4: the O'_n bundle (truncated at k_max) from one n-consensus
// object and one port-bounded 2-SA object per level k >= 2.
std::unique_ptr<implcheck::ObjectImplementation> make_o_prime_from_base_impl(
    int n, int k_max);

// Control case: the Lemma 6.4 construction with level 1 WRONGLY routed to a
// 2-SA object. Claims to implement the same O'_n spec; the checker must
// refute it (two level-1 proposers can receive different values).
std::unique_ptr<implcheck::ObjectImplementation> make_broken_o_prime_impl(
    int n, int k_max);

// Control case: fetch-and-add implemented as an unsynchronized
// read-then-write on a register. Correct sequentially; loses updates under
// concurrency, so the checker must refute it.
std::unique_ptr<implcheck::ObjectImplementation> make_racy_counter_impl();

// Multi-step positive case: a register whose read performs TWO base reads
// and returns the second. Still linearizable (the second read is the
// linearization point).
std::unique_ptr<implcheck::ObjectImplementation>
make_double_read_register_impl();

}  // namespace lbsa::core

#endif  // LBSA_CORE_IMPLEMENTATIONS_H_
