#include "core/knowledge.h"

#include "base/check.h"

namespace lbsa::core {

std::string name_o_n(int n) { return "O_" + std::to_string(n); }
std::string name_o_prime_n(int n) { return "O'_" + std::to_string(n); }
std::string name_n_consensus(int n) {
  return std::to_string(n) + "-consensus";
}
std::string name_n_pac(int n) { return std::to_string(n) + "-PAC"; }
std::string name_nm_pac(int n, int m) {
  return "(" + std::to_string(n) + "," + std::to_string(m) + ")-PAC";
}

std::vector<ImplementabilityFact> paper_facts(int n) {
  LBSA_CHECK(n >= 2);
  std::vector<ImplementabilityFact> facts;

  // Theorem 4.1 (via Algorithm 2): one (n+1)-PAC solves (n+1)-DAC.
  facts.push_back({"(n+1)-DAC solution [" + std::to_string(n + 1) + "-DAC]",
                   name_n_pac(n + 1), Verdict::kImplementable,
                   "Theorem 4.1 / Algorithm 2",
                   "protocols::DacFromPacProtocol"});

  // Theorem 4.2: no (n+1)-DAC from n-consensus + registers + 2-SA.
  facts.push_back({"(n+1)-DAC solution [" + std::to_string(n + 1) + "-DAC]",
                   name_n_consensus(n) + " + " + name_two_sa(),
                   Verdict::kNotImplementable, "Theorem 4.2", ""});

  // Theorem 4.3: (n+1)-PAC not implementable from the same base.
  facts.push_back({name_n_pac(n + 1),
                   name_n_consensus(n) + " + " + name_two_sa(),
                   Verdict::kNotImplementable, "Theorem 4.3", ""});

  // Observation 5.1(a): (n+1,n)-PAC from (n+1)-PAC + n-consensus.
  facts.push_back({name_nm_pac(n + 1, n),
                   name_n_pac(n + 1) + " + " + name_n_consensus(n),
                   Verdict::kImplementable, "Observation 5.1(a)",
                   "spec::NmPacType (direct composition)"});

  // Observation 5.1(b,c): the components from the combination.
  facts.push_back({name_n_pac(n + 1), name_nm_pac(n + 1, n),
                   Verdict::kImplementable, "Observation 5.1(b)",
                   "PROPOSEP/DECIDEP ports of spec::NmPacType"});
  facts.push_back({name_n_consensus(n), name_nm_pac(n + 1, n),
                   Verdict::kImplementable, "Observation 5.1(c)",
                   "PROPOSEC port of spec::NmPacType"});

  // Observation 6.3 (from Thm 4.3 + Obs 5.1(b)).
  facts.push_back({name_o_n(n), name_n_consensus(n) + " + " + name_two_sa(),
                   Verdict::kNotImplementable, "Observation 6.3", ""});

  // Lemma 6.4: O'_n from n-consensus + 2-SA.
  facts.push_back({name_o_prime_n(n),
                   name_n_consensus(n) + " + " + name_two_sa(),
                   Verdict::kImplementable, "Lemma 6.4",
                   "core::make_o_prime_from_base / core::OPrimeFromBaseObject"});

  // Theorem 6.5: O_n not from O'_n (the separation).
  facts.push_back({name_o_n(n), name_o_prime_n(n),
                   Verdict::kNotImplementable, "Theorem 6.5", ""});

  // Theorem 7.1 (with m := n, any bound b >= n+1 on the consensus objects):
  // the (b+1, n)-PAC at level n is not implementable from b-consensus.
  facts.push_back({name_nm_pac(n + 2, n), name_n_consensus(n + 1),
                   Verdict::kNotImplementable, "Theorem 7.1 (m=n, b=n+1)",
                   ""});

  return facts;
}

std::optional<ImplementabilityFact> lookup_fact(int n,
                                                const std::string& target,
                                                const std::string& base) {
  for (ImplementabilityFact& fact : paper_facts(n)) {
    if (fact.target == target && fact.base == base) return fact;
  }
  return std::nullopt;
}

}  // namespace lbsa::core
