// Set agreement power sequences (Section 1): for an object O, the sequence
// (n_1, n_2, ..., n_k, ...) where n_k is the largest number of processes for
// which instances of O and registers solve k-set agreement (kInfinitePower
// if unbounded). n_1 is the consensus number.
//
// Honesty discipline: every entry carries a provenance. kExact entries are
// backed by a tight theorem (cited in `source`); kLowerBound entries record
// only what a constructive protocol witnesses (the library can mechanically
// verify those lower bounds through core/solvability.h). The paper never
// computes the full sequence of O_n — its argument only needs n_1 and the
// fact that O'_n is built to match — and this type is designed so that gap
// stays visible instead of being papered over.
#ifndef LBSA_CORE_POWER_H_
#define LBSA_CORE_POWER_H_

#include <cstdint>
#include <string>
#include <vector>

namespace lbsa::core {

// n_k value meaning "any finite number of processes".
inline constexpr std::int64_t kInfinitePower = -1;

struct PowerEntry {
  std::int64_t value = 0;  // n_k, or kInfinitePower
  enum class Provenance { kExact, kLowerBound } provenance =
      Provenance::kExact;
  std::string source;  // theorem / reasoning backing the entry

  bool infinite() const { return value == kInfinitePower; }
};

class SetAgreementPower {
 public:
  // prefix[k-1] is the entry for k; must be nonempty.
  explicit SetAgreementPower(std::string object_name,
                             std::vector<PowerEntry> prefix);

  const std::string& object_name() const { return object_name_; }
  int k_max() const { return static_cast<int>(entries_.size()); }
  const PowerEntry& entry(int k) const;  // k in [1, k_max]

  // The consensus number n_1. LBSA_CHECKs that the entry is exact.
  std::int64_t consensus_number() const;

  // True iff the two sequences have the same values over the shared prefix
  // (provenances aside) — the sense in which O_n and O'_n "have the same set
  // agreement power".
  bool values_equal(const SetAgreementPower& other) const;

  // The port-bound vector for building an O'-style bundle realizing this
  // power (spec::OPrimeType's constructor argument).
  std::vector<int> port_bounds() const;

  std::string to_string() const;

 private:
  std::string object_name_;
  std::vector<PowerEntry> entries_;
};

// --- Power sequences of the paper's object families (prefix up to k_max) ---

// Registers: n_1 = 1 [Herlihy 10]; n_k = k for k >= 2 (wait-free k-set
// agreement among k processes is trivial, among k+1 impossible
// [Borowsky-Gafni / Herlihy-Shavit / Saks-Zaharoglou]).
SetAgreementPower power_of_register(int k_max);

// m-consensus objects: n_k = k*m (partition construction gives >=; tightness
// by Chaudhuri-Reiners [6]).
SetAgreementPower power_of_n_consensus(int m, int k_max);

// Strong 2-SA: n_1 = 1 (an adversary that always returns the proposer's own
// value reduces every 2-SA to a no-op among 2 processes, collapsing to the
// register-only case, where consensus is impossible [FLP 8 / LAA]);
// n_k = infinite for k >= 2 (Algorithm 3 serves any number of processes).
SetAgreementPower power_of_two_sa(int k_max);

// (n,m)-PAC objects (Section 5): n_1 = m exact (Theorem 5.3 — level m
// regardless of n); n_k >= k*m for k >= 2 via the partition construction
// over the m-consensus port (lower bound only — the paper does not compute
// these entries). The hierarchy sweep (core/hierarchy_sweep.h) machine-checks
// the constructive n_1 direction for every 2 <= n <= 6, 1 <= m <= n.
SetAgreementPower power_of_nm_pac(int n, int m, int k_max);

// O_n = (n+1, n)-PAC (Definition 6.1): exactly the (n,m) family's sequence
// at (n+1, n), renamed — n_1 = n exact (Theorem 5.3 / Observation 6.2),
// n_k >= k*n via the object's n-consensus port.
SetAgreementPower power_of_o_n(int n, int k_max);

// O'_n is *constructed* to embody the power of O_n, so its sequence is the
// same by definition (Section 6).
SetAgreementPower power_of_o_prime_n(int n, int k_max);

// --- Classic hierarchy objects (Herlihy [10]), for landscape comparison ---

// test&set: consensus number 2; equivalent to a 2-consensus object (each
// implements the other with registers), so n_k = 2k by [6].
SetAgreementPower power_of_test_and_set(int k_max);

// FIFO queue: consensus number 2 [10]; n_k >= 2k via queue-based group
// consensus (lower bound; the library does not cite a tightness proof).
SetAgreementPower power_of_queue(int k_max);

// compare&swap: consensus number ∞ [10], hence n_k = ∞ for every k.
SetAgreementPower power_of_compare_and_swap(int k_max);

}  // namespace lbsa::core

#endif  // LBSA_CORE_POWER_H_
