// The machine-checked (n,m)-PAC hierarchy sweep: for every (n, m) with
// n_min <= n <= n_max and 1 <= m <= n, certify the constructive direction of
// Theorems 5.2/5.3 under ALL schedules —
//
//   (a) the consensus port of the (n,m)-PAC object solves m-consensus for
//       every process count p in [1, m] (ConsensusFromNmPacProtocol,
//       explored exhaustively);
//   (b) the PAC ports solve the n-DAC problem (DacFromNmPacProtocol,
//       Observation 5.1(b));
//   (c) the verdict matches the level declared by core::nm_pac_entry — the
//       parameterized family row of hierarchy_catalog, whose (n+1, n)
//       instance is the paper's separating object O_n.
//
// The sweep's output is a consensus-power table (HIERARCHY.json via
// tools/hierarchy_sweep_cli + tools/hierarchy_report.sh) whose row section
// is fully deterministic: rows carry only graph-derived data (node counts,
// transition counts, full-graph estimates, reduction ratios), all explored
// under pinned symmetry reduction, so the rows document is byte-identical
// across engines, thread counts, and cross-check reduction modes — the
// canonical-graph guarantee extended to the artifact level.
#ifndef LBSA_CORE_HIERARCHY_SWEEP_H_
#define LBSA_CORE_HIERARCHY_SWEEP_H_

#include <optional>
#include <string>
#include <vector>

#include "base/status.h"
#include "modelcheck/explorer.h"

namespace lbsa::core {

struct SweepOptions {
  int n_min = 2;
  int n_max = 6;
  // Engine/threads used to build each row's configuration graphs. Complete
  // graphs are bit-identical across these by the canonical-graph guarantee,
  // so they are provenance, not semantics.
  modelcheck::ExploreEngine engine = modelcheck::ExploreEngine::kAuto;
  int threads = 0;
  // Node budget per exploration; exceeding it fails the row (the sweep
  // never truncates — a partial graph cannot certify "under all schedules").
  std::uint64_t max_nodes = 5'000'000;
  // When set, every task verdict is re-checked under this reduction mode
  // and the row run fails on any disagreement. Recorded row statistics
  // always come from the pinned symmetry-reduced exploration, keeping the
  // rows document byte-identical whether or not a cross-check ran.
  std::optional<modelcheck::Reduction> cross_check;
};

// Statistics of one exhaustively checked task instance (complete graph,
// symmetry reduction pinned).
struct SweepCheck {
  bool ok = false;
  int processes = 0;
  std::uint64_t nodes = 0;          // quotient-graph nodes
  std::uint64_t transitions = 0;    // quotient-graph transitions
  std::uint64_t nodes_full = 0;     // exact unreduced node count (Σ orbits)
  double reduction_ratio = 1.0;     // nodes_full / nodes
};

struct SweepRow {
  int n = 0;
  int m = 0;
  std::string object;            // "(n,m)-PAC"
  std::int64_t declared_level = 0;
  std::string level_source;
  // The p = m consensus instance (the port's claimed capacity).
  SweepCheck consensus;
  // True iff the consensus check passed for EVERY p in [1, m].
  bool consensus_ok_all_p = false;
  // The n-process DAC instance over the PAC ports.
  SweepCheck dac;
  // Verdict == declared level: both constructive checks pass and the
  // catalog row declares level m.
  bool matches_catalog = false;

  bool ok() const { return consensus_ok_all_p && dac.ok && matches_catalog; }
};

struct SweepResult {
  int n_min = 0;
  int n_max = 0;
  std::vector<SweepRow> rows;  // (n, m) in lexicographic order

  bool all_ok() const;
};

// Provenance stamped into the full artifact (NOT into the rows document).
struct SweepProvenance {
  std::string tool = "hierarchy_sweep_cli";
  std::string engine;        // engine_name() of the requested engine
  int threads = 0;           // requested worker threads (0 = auto)
  int threads_available = 1; // cores the host actually had
};

// Checks one (n, m) cell. Errors (rather than reporting a failed row) on
// exploration failures and on cross-check verdict disagreement.
StatusOr<SweepRow> run_hierarchy_row(int n, int m,
                                     const SweepOptions& options = {});

// Runs every cell in [n_min, n_max] x [1, n].
StatusOr<SweepResult> run_hierarchy_sweep(const SweepOptions& options = {});

// The deterministic rows document:
//   {"lbsa_hierarchy_schema":1,"n_min":..,"n_max":..,"rows":[...]}
// Byte-identical across engines, thread counts, and cross-check modes.
std::string hierarchy_rows_json(const SweepResult& result);

// The full HIERARCHY.json artifact: the rows document plus a "provenance"
// object. Validated by obs::validate_hierarchy_artifact_json / the
// `report_check hierarchy` mode.
std::string hierarchy_artifact_json(const SweepResult& result,
                                    const SweepProvenance& provenance);

// The consensus-power table as a GitHub-markdown grid (rows n, columns m;
// each verified cell shows its machine-checked level) — the README snippet.
std::string hierarchy_table_markdown(const SweepResult& result);

}  // namespace lbsa::core

#endif  // LBSA_CORE_HIERARCHY_SWEEP_H_
