// Empirical solvability harness: mechanically witnesses set-agreement-power
// lower bounds by building the canonical partition protocol for an object
// family and model-checking it over ALL schedules and adversarial object
// responses (experiments E4, E5, E7, E8).
//
// A passing report is a machine-checked proof that the family solves k-set
// agreement among `num_procs` processes *for this instance size*; a failing
// report carries a counterexample trace. It cannot witness upper bounds
// (impossibility); those live in core/knowledge.h with their theorem tags.
#ifndef LBSA_CORE_SOLVABILITY_H_
#define LBSA_CORE_SOLVABILITY_H_

#include "base/status.h"
#include "modelcheck/task_check.h"

namespace lbsa::core {

enum class ObjectFamily {
  kNConsensus,      // param m: m-consensus objects, one per group of m
  kTwoSa,           // param ignored: one strong 2-SA object
  kOn,              // param n: O_n objects, PROPOSEC port, one per group of n
  kOPrime,          // param n: one O'_n object, level-k port
  kOPrimeFromBase,  // param n: the Lemma 6.4 construction, level-k port
};

const char* object_family_name(ObjectFamily family);

// Builds the canonical protocol solving k-set agreement among num_procs
// processes with the given family and checks it exhaustively. num_procs must
// not exceed the family's witnessable bound for (param, k) — the partition
// shape requires num_procs <= k * param for consensus-based families; the
// 2-SA family accepts any num_procs when k >= 2.
StatusOr<modelcheck::TaskReport> witness_k_agreement(
    ObjectFamily family, int param, int k, int num_procs,
    const modelcheck::TaskCheckOptions& options = {});

}  // namespace lbsa::core

#endif  // LBSA_CORE_SOLVABILITY_H_
