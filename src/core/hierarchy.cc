#include "core/hierarchy.h"

#include "base/check.h"
#include "core/knowledge.h"

namespace lbsa::core {

HierarchyEntry nm_pac_entry(int n, int m, int k_max) {
  LBSA_CHECK(n >= 2 && m >= 1 && m <= n && k_max >= 1);
  return {"(n,m)-PAC", name_nm_pac(n, m), static_cast<std::int64_t>(m),
          "Theorem 5.3: level m regardless of n",
          power_of_nm_pac(n, m, k_max)};
}

std::vector<HierarchyEntry> hierarchy_catalog(int n, int k_max) {
  LBSA_CHECK(n >= 2 && k_max >= 1);
  std::vector<HierarchyEntry> catalog;
  catalog.push_back({"register", "register", 1,
                     "Herlihy [10]", power_of_register(k_max)});
  catalog.push_back({"2-SA", "2-SA", 1,
                     "own-value adversary + FLP [8]", power_of_two_sa(k_max)});
  catalog.push_back({"test&set", "test&set", 2, "Herlihy [10]",
                     power_of_test_and_set(k_max)});
  catalog.push_back(
      {"queue", "queue", 2, "Herlihy [10]", power_of_queue(k_max)});
  catalog.push_back({"n-consensus", name_n_consensus(n),
                     static_cast<std::int64_t>(n), "footnote 6",
                     power_of_n_consensus(n, k_max)});
  catalog.push_back(nm_pac_entry(n + 1, n, k_max));
  catalog.push_back({"O_n", name_o_n(n), static_cast<std::int64_t>(n),
                     "Theorem 5.3 / Observation 6.2",
                     power_of_o_n(n, k_max)});
  catalog.push_back({"O'_n", name_o_prime_n(n), static_cast<std::int64_t>(n),
                     "same power sequence as O_n (Section 6)",
                     power_of_o_prime_n(n, k_max)});
  catalog.push_back({"compare&swap", "compare&swap", kLevelInfinity,
                     "Herlihy [10]", power_of_compare_and_swap(k_max)});
  return catalog;
}

std::vector<HierarchyEntry> entries_at_level(int n, int k_max,
                                             std::int64_t level) {
  std::vector<HierarchyEntry> out;
  for (HierarchyEntry& entry : hierarchy_catalog(n, k_max)) {
    if (entry.level == level) out.push_back(std::move(entry));
  }
  return out;
}

std::optional<HierarchyEntry> find_family(int n, int k_max,
                                          const std::string& family) {
  for (HierarchyEntry& entry : hierarchy_catalog(n, k_max)) {
    if (entry.family == family) return std::move(entry);
  }
  return std::nullopt;
}

}  // namespace lbsa::core
