// The paper's implementability results as a queryable knowledge base.
//
// Impossibility theorems quantify over all algorithms and cannot be
// established by running code; what a library CAN do is expose the proved
// facts in machine-readable form, each tagged with its theorem, its kind
// (constructive facts additionally point at the module that realizes them),
// and the level-n instantiation it concerns. Tests assert internal
// consistency (e.g. no pair is both implementable and not, the separation
// corollary follows from its two premises being present).
#ifndef LBSA_CORE_KNOWLEDGE_H_
#define LBSA_CORE_KNOWLEDGE_H_

#include <optional>
#include <string>
#include <vector>

namespace lbsa::core {

enum class Verdict {
  kImplementable,     // constructive: the library contains the construction
  kNotImplementable,  // proved impossible in the paper
};

struct ImplementabilityFact {
  std::string target;       // what is (not) being implemented
  std::string base;         // from what (always "+ registers" implicitly)
  Verdict verdict = Verdict::kImplementable;
  std::string source;       // theorem / lemma in the paper
  std::string realization;  // for constructive facts: module realizing it
};

// The paper's facts instantiated at hierarchy level n (n >= 2).
std::vector<ImplementabilityFact> paper_facts(int n);

// Looks up the verdict for (target, base) among paper_facts(n).
std::optional<ImplementabilityFact> lookup_fact(int n,
                                                const std::string& target,
                                                const std::string& base);

// Canonical object names used in the fact table, for programmatic queries.
std::string name_o_n(int n);               // "O_n" instantiated
std::string name_o_prime_n(int n);         // "O'_n"
std::string name_n_consensus(int n);       // "n-consensus"
std::string name_n_pac(int n);             // "n-PAC"
std::string name_nm_pac(int n, int m);     // "(n,m)-PAC"
inline std::string name_two_sa() { return "2-SA"; }

}  // namespace lbsa::core

#endif  // LBSA_CORE_KNOWLEDGE_H_
