// The paper's headline pair: O_n and O'_n (Section 6), plus the Lemma 6.4
// construction of O'_n from n-consensus and 2-SA objects, in both realms
// (sequential specification and concurrent implementation).
//
// Truncation note (DESIGN.md substitution): the paper's O'_n carries one
// (n_k, k)-SA member for every k >= 1; a concrete object must truncate to a
// finite prefix k <= k_max. The port bounds used are the entries of
// power_of_o_n(n, k_max) — exact for k = 1 (Theorem 5.3) and the
// mechanically-witnessed k*n lower bounds for k >= 2 (the paper never
// computes those entries; see core/power.h).
#ifndef LBSA_CORE_SEPARATION_H_
#define LBSA_CORE_SEPARATION_H_

#include <memory>

#include "concurrent/atomic_two_sa.h"
#include "concurrent/cas_consensus.h"
#include "concurrent/concurrent_object.h"
#include "core/power.h"
#include "spec/nm_pac_type.h"
#include "spec/oprime_type.h"

namespace lbsa::core {

// O_n = (n+1, n)-PAC (Definition 6.1). n >= 2.
std::shared_ptr<const spec::NmPacType> make_o_n(int n);

// The O'_n specification: the (n_k, k)-SA bundle for this library's
// realization of O_n's power sequence, truncated at k_max.
std::shared_ptr<const spec::OPrimeType> make_o_prime_n(int n, int k_max);

// The Lemma 6.4 construction as a sequential object: the same PROPOSE(v, k)
// interface, but level 1 is backed by an n-consensus object ((n_1,1)-SA) and
// every level k >= 2 by a port-bounded 2-SA object ((n_k,2)-SA). Every
// history of this object (with per-level propose counts within bounds) is
// linearizable with respect to make_o_prime_n(n, k_max) — the checkable
// content of "O'_n can be implemented by n-consensus objects and 2-SA
// objects".
std::shared_ptr<const spec::OPrimeType> make_o_prime_from_base(int n,
                                                               int k_max);

// Concurrent Lemma 6.4 construction: lock-free all the way down (CAS
// consensus for level 1, 128-bit-CAS 2-SA for levels >= 2). Implements the
// make_o_prime_n(n, k_max) specification.
class OPrimeFromBaseObject final : public concurrent::ConcurrentObject {
 public:
  OPrimeFromBaseObject(int n, int k_max,
                       concurrent::TwoSaSelection selection =
                           concurrent::TwoSaSelection::kMixed);

  const spec::ObjectType& type() const override { return *spec_; }
  Value apply(const spec::Operation& op) override;

 private:
  std::shared_ptr<const spec::OPrimeType> spec_;
  concurrent::CasConsensus level1_;
  std::vector<std::unique_ptr<concurrent::AtomicTwoSa>> higher_levels_;
};

}  // namespace lbsa::core

#endif  // LBSA_CORE_SEPARATION_H_
