#include "core/hierarchy_sweep.h"

#include <cstdio>
#include <memory>

#include "base/check.h"
#include "core/hierarchy.h"
#include "modelcheck/task_check.h"
#include "obs/json.h"
#include "protocols/consensus_from_nm_pac.h"
#include "protocols/dac_from_nm_pac.h"
#include "sim/symmetry.h"

namespace lbsa::core {
namespace {

using modelcheck::TaskCheckOptions;
using modelcheck::TaskReport;

// Distinct inputs 100, 200, ... — the strongest validity test (a decided
// value pins down its proposer).
std::vector<Value> distinct_inputs(int p) {
  std::vector<Value> inputs;
  for (int i = 0; i < p; ++i) inputs.push_back(100 * (i + 1));
  return inputs;
}

// DAC inputs: the distinguished process proposes 100, every other process
// 200. Equal non-distinguished inputs put all of them in one symmetry
// orbit, so the quotient graph shrinks by up to (n-1)! — what keeps the
// n = 6 cells exhaustively explorable.
std::vector<Value> dac_inputs(int n) {
  std::vector<Value> inputs(static_cast<size_t>(n), 200);
  inputs[0] = 100;
  return inputs;
}

// One protocol instance of a sweep cell, pinned so its symmetry-reduced
// base run and its cross-check re-run share the same precomputed
// canonicalizer (group + orbit tables built once) and the row's orbit-cache
// pool. Null canonicalizer == trivial symmetry group (the explorer then
// ignores both fields).
struct CellInstance {
  std::shared_ptr<const sim::Protocol> protocol;
  std::shared_ptr<const sim::Canonicalizer> canonicalizer;
  std::shared_ptr<sim::CanonCachePool> pool;
};

std::shared_ptr<const sim::Canonicalizer> make_canonicalizer(
    const std::shared_ptr<const sim::Protocol>& protocol) {
  sim::SymmetrySpec spec = protocol->symmetry();
  if (spec.trivial()) return nullptr;
  return std::make_shared<const sim::Canonicalizer>(protocol,
                                                    std::move(spec));
}

TaskCheckOptions make_check_options(const SweepOptions& options,
                                    modelcheck::Reduction reduction,
                                    const CellInstance& cell) {
  TaskCheckOptions check;
  check.explore.engine = options.engine;
  check.explore.threads = options.threads;
  check.explore.max_nodes = options.max_nodes;
  check.explore.reduction = reduction;
  check.explore.canonicalizer = cell.canonicalizer;
  check.explore.canon_cache_pool = cell.pool;
  return check;
}

SweepCheck to_sweep_check(const TaskReport& report, int processes) {
  SweepCheck check;
  check.ok = report.ok() && !report.partial;
  check.processes = processes;
  check.nodes = report.node_count;
  check.transitions = report.transition_count;
  check.nodes_full = report.full_node_estimate;
  check.reduction_ratio =
      report.node_count == 0
          ? 1.0
          : static_cast<double>(report.full_node_estimate) /
                static_cast<double>(report.node_count);
  return check;
}

CellInstance make_consensus_instance(
    int n, int m, const std::vector<Value>& inputs,
    std::shared_ptr<sim::CanonCachePool> pool) {
  CellInstance cell;
  cell.protocol =
      std::make_shared<protocols::ConsensusFromNmPacProtocol>(n, m, inputs);
  cell.canonicalizer = make_canonicalizer(cell.protocol);
  cell.pool = std::move(pool);
  return cell;
}

CellInstance make_dac_instance(int m, const std::vector<Value>& inputs,
                               std::shared_ptr<sim::CanonCachePool> pool) {
  CellInstance cell;
  cell.protocol = std::make_shared<protocols::DacFromNmPacProtocol>(
      inputs, m, /*distinguished_pid=*/0);
  cell.canonicalizer = make_canonicalizer(cell.protocol);
  cell.pool = std::move(pool);
  return cell;
}

StatusOr<TaskReport> check_consensus_instance(const CellInstance& cell,
                                              const std::vector<Value>& inputs,
                                              const SweepOptions& options,
                                              modelcheck::Reduction reduction) {
  return modelcheck::check_consensus_task(
      cell.protocol, inputs, make_check_options(options, reduction, cell));
}

StatusOr<TaskReport> check_dac_instance(const CellInstance& cell,
                                        const std::vector<Value>& inputs,
                                        const SweepOptions& options,
                                        modelcheck::Reduction reduction) {
  return modelcheck::check_dac_task(cell.protocol,
                                    /*distinguished_pid=*/0, inputs,
                                    make_check_options(options, reduction, cell));
}

// Re-runs `base_ok`'s instance under options.cross_check (if set) and
// errors on verdict disagreement — the reduction-equivalence certificate
// the artifact's "reproduced across reductions" claim rests on.
template <typename CheckFn>
Status cross_check_verdict(const SweepOptions& options, bool base_ok,
                           const std::string& what, CheckFn&& check_fn) {
  if (!options.cross_check.has_value()) return Status::ok();
  StatusOr<TaskReport> report_or = check_fn(*options.cross_check);
  if (!report_or.is_ok()) return report_or.status();
  const TaskReport& report = report_or.value();
  const bool ok = report.ok() && !report.partial;
  if (ok != base_ok) {
    return internal_error(
        "hierarchy sweep: " + what + " verdict under reduction=" +
        modelcheck::reduction_name(*options.cross_check) +
        " disagrees with the symmetry-reduced verdict");
  }
  return Status::ok();
}

std::string format_ratio(double ratio) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.2f", ratio);
  return buf;
}

void write_check_json(obs::JsonWriter& w, const SweepCheck& check) {
  w.begin_object();
  w.key("ok");
  w.value_bool(check.ok);
  w.key("processes");
  w.value_int(check.processes);
  w.key("nodes");
  w.value_uint(check.nodes);
  w.key("transitions");
  w.value_uint(check.transitions);
  w.key("nodes_full");
  w.value_uint(check.nodes_full);
  w.key("reduction_ratio");
  w.value_raw(format_ratio(check.reduction_ratio));
  w.end_object();
}

// The schema/range/rows fields shared by the rows document and the full
// artifact — one writer so the two can never drift.
void write_rows_fields(obs::JsonWriter& w, const SweepResult& result) {
  w.key("lbsa_hierarchy_schema");
  w.value_int(1);
  w.key("n_min");
  w.value_int(result.n_min);
  w.key("n_max");
  w.value_int(result.n_max);
  w.key("rows");
  w.begin_array();
  for (const SweepRow& row : result.rows) {
    w.begin_object();
    w.key("n");
    w.value_int(row.n);
    w.key("m");
    w.value_int(row.m);
    w.key("object");
    w.value_string(row.object);
    w.key("declared_level");
    w.value_int(row.declared_level);
    w.key("level_source");
    w.value_string(row.level_source);
    w.key("consensus");
    write_check_json(w, row.consensus);
    w.key("consensus_ok_all_p");
    w.value_bool(row.consensus_ok_all_p);
    w.key("dac");
    write_check_json(w, row.dac);
    w.key("matches_catalog");
    w.value_bool(row.matches_catalog);
    w.end_object();
  }
  w.end_array();
}

}  // namespace

bool SweepResult::all_ok() const {
  for (const SweepRow& row : rows) {
    if (!row.ok()) return false;
  }
  return !rows.empty();
}

StatusOr<SweepRow> run_hierarchy_row(int n, int m,
                                     const SweepOptions& options) {
  LBSA_CHECK(n >= 2 && m >= 1 && m <= n);

  SweepRow row;
  row.n = n;
  row.m = m;
  const HierarchyEntry entry = nm_pac_entry(n, m, /*k_max=*/1);
  row.object = entry.instance;
  row.declared_level = entry.level;
  row.level_source = entry.level_source;

  // One orbit-cache pool for the whole row: its caches are keyed by each
  // instance's universe salt, so the p-sweep and the dac check reuse the
  // same memory while never mixing entries across instances.
  auto pool = std::make_shared<sim::CanonCachePool>(
      modelcheck::ExploreOptions{}.canon_cache_bytes);

  // (a) m-consensus over the C port, for every process count p <= m.
  row.consensus_ok_all_p = true;
  for (int p = 1; p <= m; ++p) {
    const std::vector<Value> inputs = distinct_inputs(p);
    const CellInstance cell = make_consensus_instance(n, m, inputs, pool);
    StatusOr<TaskReport> report_or = check_consensus_instance(
        cell, inputs, options, modelcheck::Reduction::kSymmetry);
    if (!report_or.is_ok()) return report_or.status();
    const SweepCheck check = to_sweep_check(report_or.value(), p);
    row.consensus_ok_all_p = row.consensus_ok_all_p && check.ok;
    if (p == m) row.consensus = check;
    Status s = cross_check_verdict(
        options, check.ok,
        "consensus p=" + std::to_string(p) + " on " + row.object,
        [&](modelcheck::Reduction r) {
          return check_consensus_instance(cell, inputs, options, r);
        });
    if (!s.is_ok()) return s;
  }

  // (b) n-DAC over the PAC ports (Observation 5.1(b)).
  const std::vector<Value> inputs = dac_inputs(n);
  const CellInstance dac_cell = make_dac_instance(m, inputs, pool);
  StatusOr<TaskReport> dac_or = check_dac_instance(
      dac_cell, inputs, options, modelcheck::Reduction::kSymmetry);
  if (!dac_or.is_ok()) return dac_or.status();
  row.dac = to_sweep_check(dac_or.value(), n);
  Status s = cross_check_verdict(
      options, row.dac.ok, "dac on " + row.object,
      [&](modelcheck::Reduction r) {
        return check_dac_instance(dac_cell, inputs, options, r);
      });
  if (!s.is_ok()) return s;

  // (c) the machine-checked verdict equals the catalog's declared level.
  row.matches_catalog = row.declared_level == m && row.consensus_ok_all_p &&
                        row.dac.ok;
  return row;
}

StatusOr<SweepResult> run_hierarchy_sweep(const SweepOptions& options) {
  LBSA_CHECK(options.n_min >= 2 && options.n_min <= options.n_max);
  SweepResult result;
  result.n_min = options.n_min;
  result.n_max = options.n_max;
  for (int n = options.n_min; n <= options.n_max; ++n) {
    for (int m = 1; m <= n; ++m) {
      StatusOr<SweepRow> row_or = run_hierarchy_row(n, m, options);
      if (!row_or.is_ok()) return row_or.status();
      result.rows.push_back(std::move(row_or).value());
    }
  }
  return result;
}

std::string hierarchy_rows_json(const SweepResult& result) {
  obs::JsonWriter w;
  w.begin_object();
  write_rows_fields(w, result);
  w.end_object();
  return std::move(w).str();
}

std::string hierarchy_artifact_json(const SweepResult& result,
                                    const SweepProvenance& provenance) {
  obs::JsonWriter w;
  w.begin_object();
  write_rows_fields(w, result);
  w.key("provenance");
  w.begin_object();
  w.key("tool");
  w.value_string(provenance.tool);
  w.key("engine");
  w.value_string(provenance.engine);
  w.key("threads");
  w.value_int(provenance.threads);
  w.key("threads_available");
  w.value_int(provenance.threads_available);
  // Rows are always explored under pinned symmetry reduction (see
  // hierarchy_sweep.h); recorded here so readers need not infer it.
  w.key("reduction");
  w.value_string("symmetry");
  w.end_object();
  w.end_object();
  return std::move(w).str();
}

std::string hierarchy_table_markdown(const SweepResult& result) {
  std::string out = "| n \\ m |";
  for (int m = 1; m <= result.n_max; ++m) {
    out += " " + std::to_string(m) + " |";
  }
  out += "\n|---|";
  for (int m = 1; m <= result.n_max; ++m) out += "---|";
  out += "\n";
  for (int n = result.n_min; n <= result.n_max; ++n) {
    out += "| **" + std::to_string(n) + "** |";
    for (int m = 1; m <= result.n_max; ++m) {
      if (m > n) {
        out += "  |";
        continue;
      }
      const SweepRow* found = nullptr;
      for (const SweepRow& row : result.rows) {
        if (row.n == n && row.m == m) {
          found = &row;
          break;
        }
      }
      if (found == nullptr) {
        out += " ? |";
      } else {
        out += " " + std::to_string(found->declared_level) +
               (found->ok() ? " ✓" : " ✗") + " |";
      }
    }
    out += "\n";
  }
  return out;
}

}  // namespace lbsa::core
