#include "serve/server.h"

#include <sys/socket.h>
#include <sys/stat.h>
#include <sys/un.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <cstring>
#include <string>
#include <utility>

namespace lbsa::serve {

// One accepted client connection. The fd is owned by this struct and closed
// by the destructor — sinks for in-flight requests hold a shared_ptr, so
// the fd outlives the reader thread until the last response is framed.
struct Server::Connection {
  explicit Connection(int fd) : fd(fd) {}
  ~Connection() {
    if (fd >= 0) ::close(fd);
  }

  void write_line(std::string_view line) {
    if (dead.load(std::memory_order_relaxed)) return;
    std::string framed(line);
    framed += '\n';
    std::lock_guard<std::mutex> lock(write_mu);
    std::size_t off = 0;
    while (off < framed.size()) {
      // MSG_NOSIGNAL: a client that hung up must not SIGPIPE the server.
      const ssize_t n = ::send(fd, framed.data() + off, framed.size() - off,
                               MSG_NOSIGNAL);
      if (n <= 0) {
        if (n < 0 && errno == EINTR) continue;
        dead.store(true, std::memory_order_relaxed);
        return;
      }
      off += static_cast<std::size_t>(n);
    }
  }

  const int fd;
  std::mutex write_mu;
  std::atomic<bool> dead{false};
};

Server::Server(ServerOptions options)
    : options_(std::move(options)), service_(options_.service) {}

Server::~Server() { stop(); }

Status Server::start() {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (options_.socket_path.size() >= sizeof addr.sun_path) {
    return invalid_argument("serve: socket path too long: " +
                            options_.socket_path);
  }
  std::memcpy(addr.sun_path, options_.socket_path.c_str(),
              options_.socket_path.size() + 1);

  // A stale socket file from a dead server would make bind fail forever;
  // only an actual socket is unlinked (a regular file at the path is a
  // caller mistake worth surfacing).
  struct stat st{};
  if (::lstat(options_.socket_path.c_str(), &st) == 0) {
    if (!S_ISSOCK(st.st_mode)) {
      return invalid_argument("serve: " + options_.socket_path +
                              " exists and is not a socket");
    }
    ::unlink(options_.socket_path.c_str());
  }

  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) {
    return internal_error(std::string("serve: socket: ") +
                          std::strerror(errno));
  }
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) < 0) {
    const int err = errno;
    ::close(fd);
    return internal_error("serve: bind " + options_.socket_path + ": " +
                          std::strerror(err));
  }
  if (::listen(fd, 64) < 0) {
    const int err = errno;
    ::close(fd);
    ::unlink(options_.socket_path.c_str());
    return internal_error(std::string("serve: listen: ") +
                          std::strerror(err));
  }
  listen_fd_.store(fd, std::memory_order_release);
  accept_thread_ = std::thread([this] { accept_main(); });
  return Status::ok();
}

void Server::accept_main() {
  for (;;) {
    // Re-load each iteration: stop() exchanges the fd to -1 concurrently,
    // and accept(-1) fails with EBADF, ending the loop.
    const int fd =
        ::accept(listen_fd_.load(std::memory_order_acquire), nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      return;  // listener closed (stop()) or fatal — either way, done
    }
    auto conn = std::make_shared<Connection>(fd);
    std::lock_guard<std::mutex> lock(mu_);
    if (stopping_) {
      // Raced with stop(): refuse rather than leak a reader thread that
      // nobody will join.
      continue;  // ~Connection closes the fd
    }
    connections_.push_back(conn);
    readers_.emplace_back(
        [this, conn = std::move(conn)]() mutable { connection_main(conn); });
  }
}

void Server::connection_main(std::shared_ptr<Connection> conn) {
  std::string buffer;
  char chunk[4096];
  for (;;) {
    const ssize_t n = ::recv(conn->fd, chunk, sizeof chunk, 0);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) return;  // EOF or error: client is gone
    buffer.append(chunk, static_cast<std::size_t>(n));
    std::size_t start = 0;
    for (;;) {
      const std::size_t nl = buffer.find('\n', start);
      if (nl == std::string::npos) break;
      const std::string_view line(buffer.data() + start, nl - start);
      if (!line.empty()) {
        service_.submit_line(
            line, [conn](std::string_view out) { conn->write_line(out); });
      }
      start = nl + 1;
    }
    buffer.erase(0, start);
  }
}

void Server::stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopping_) return;
    stopping_ = true;
  }
  const int lfd = listen_fd_.exchange(-1, std::memory_order_acq_rel);
  if (lfd >= 0) {
    // Unblock accept(); shutdown alone does not wake accept on all
    // platforms, so close outright — accept_main exits on the error.
    ::shutdown(lfd, SHUT_RDWR);
    ::close(lfd);
  }
  if (accept_thread_.joinable()) accept_thread_.join();

  // Drain the service first so every accepted request is answered, then
  // hang up readers still blocked on idle connections.
  service_.shutdown();
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto& weak : connections_) {
      if (auto conn = weak.lock()) ::shutdown(conn->fd, SHUT_RDWR);
    }
  }
  for (std::thread& t : readers_) t.join();
  readers_.clear();
  connections_.clear();
  if (!options_.socket_path.empty()) {
    ::unlink(options_.socket_path.c_str());
  }
}

}  // namespace lbsa::serve
