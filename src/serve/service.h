// CheckService — the reentrant heart of lbsa_serverd: a shared worker pool
// multiplexing check/explore/fuzz requests over the registered named tasks,
// with per-request lifecycle (Deadline from deadline_ms, a CancelToken the
// cancel op can trip mid-flight) and a fingerprint-keyed result cache.
//
// Transport-agnostic: the server hands each request a ResponseSink (one
// protocol.h response line per call, no trailing newline) and the service
// never touches sockets, so the e2e tests drive it in-process.
//
// Determinism contract (what makes the cache sound): run_*_task outputs —
// human summary, exit code, RunReport skeleton — are pure functions of the
// request for deterministic workloads (explore graphs are engine/thread
// invariant, coverage fuzz is seed-deterministic). Report bytes are
// serialized with tool="lbsa_serverd", wall_seconds=0, and an empty metrics
// snapshot, so a cache hit replays byte-identical lines. Blind fuzz is
// thread-schedule dependent only in its error paths' timing, but its report
// IS deterministic per (seed, threads); it is still never cached —
// eligibility is conservative: report_valid, exit_code != 4 (interrupted
// runs are request-lifecycle artifacts, not task results), coverage mode
// only for fuzz, and no checkpoint side effects.
#ifndef LBSA_SERVE_SERVICE_H_
#define LBSA_SERVE_SERVICE_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <unordered_map>
#include <vector>

#include "serve/protocol.h"

namespace lbsa::serve {

struct ServiceOptions {
  // Worker threads draining the request queue; 0 = one per hardware thread
  // (each workload may itself be multi-threaded via the request's
  // `threads` knob, so the default server pins workloads to threads=1
  // unless the client asks otherwise).
  int workers = 0;
  // Result-cache entries (LRU); 0 disables caching.
  std::size_t cache_capacity = 256;
};

class CheckService {
 public:
  // One response line (strict JSON, no trailing newline). Invoked from the
  // submitting thread (inline ops, parse errors) AND from worker threads
  // (reports, heartbeats), possibly concurrently with other requests
  // sharing the sink — the sink must be thread-safe.
  using ResponseSink = std::function<void(std::string_view line)>;

  explicit CheckService(ServiceOptions options);
  ~CheckService();

  CheckService(const CheckService&) = delete;
  CheckService& operator=(const CheckService&) = delete;

  // Parses and dispatches one request line. Parse errors, status, and
  // cancel are answered inline before returning; check/explore/fuzz are
  // queued and answered from a worker. The deadline clock starts HERE
  // (queue wait counts against deadline_ms — a server melting down must
  // shed load, not stretch deadlines).
  void submit_line(std::string_view line, ResponseSink sink);

  // Same, for an already-parsed request.
  void submit(ServeRequest request, ResponseSink sink);

  // Stops accepting, fails queued-but-unstarted requests with
  // FAILED_PRECONDITION, lets in-flight workloads finish, joins workers.
  // Idempotent; the destructor calls it.
  void shutdown();

  // The status-op stats object (strict JSON), also exposed for the bench
  // harness: request counts by op, cache hit/miss/size, queue depth,
  // active count, and end-to-end latency quantiles (microseconds,
  // log2-bucket upper bounds — obs/metrics.h semantics).
  std::string stats_json() const;

 private:
  struct Request;  // one queued/in-flight request (service.cc)

  void worker_main();
  void run_request(const std::shared_ptr<Request>& req);
  void finish_request(const std::shared_ptr<Request>& req,
                      std::string_view line);
  void record_latency(std::uint64_t us);

  const ServiceOptions options_;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  bool quit_ = false;
  std::deque<std::shared_ptr<Request>> queue_;
  // Active = submitted and not yet answered; the cancel op resolves its
  // target here. Keyed by request id (last submit wins on a duplicate id).
  std::unordered_map<std::string, std::shared_ptr<Request>> active_;
  std::vector<std::thread> workers_;

  // LRU result cache: key -> (exit_code, human, report bytes).
  struct CachedResult {
    int exit_code = 0;
    std::string human;
    std::string report_json;
  };
  std::list<std::pair<std::string, CachedResult>> cache_lru_;
  std::unordered_map<std::string,
                     std::list<std::pair<std::string, CachedResult>>::iterator>
      cache_index_;

  // Stats (all under mu_ except where noted).
  std::uint64_t requests_total_ = 0;
  std::uint64_t requests_check_ = 0;
  std::uint64_t requests_explore_ = 0;
  std::uint64_t requests_fuzz_ = 0;
  std::uint64_t requests_rejected_ = 0;  // parse/validation errors
  std::uint64_t cache_hits_ = 0;
  std::uint64_t cache_misses_ = 0;
  std::uint64_t cancelled_ = 0;  // cancel ops that found their target
  // End-to-end latency (submit -> final response), microseconds, log2
  // buckets (obs/metrics.h bucketing: bucket 0 = 0, bucket 1+floor(log2)).
  std::vector<std::uint64_t> latency_buckets_;
  std::uint64_t latency_count_ = 0;
};

}  // namespace lbsa::serve

#endif  // LBSA_SERVE_SERVICE_H_
