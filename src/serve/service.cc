#include "serve/service.h"

#include <bit>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <thread>
#include <utility>

#include "modelcheck/cancel.h"
#include "modelcheck/checkpoint.h"
#include "modelcheck/corpus.h"
#include "modelcheck/explorer.h"
#include "modelcheck/fuzz.h"
#include "modelcheck/run_task.h"
#include "obs/heartbeat.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/report.h"

namespace lbsa::serve {

namespace {

using Clock = std::chrono::steady_clock;

std::string hex64(std::uint64_t v) {
  char buf[17];
  std::snprintf(buf, sizeof buf, "%016llx",
                static_cast<unsigned long long>(v));
  return std::string(buf);
}

}  // namespace

struct CheckService::Request {
  ServeRequest req;
  ResponseSink sink;
  modelcheck::CancelToken cancel;
  modelcheck::Deadline deadline = {};
  Clock::time_point submitted = {};
};

CheckService::CheckService(ServiceOptions options) : options_(options) {
  latency_buckets_.assign(obs::kHistogramBuckets, 0);
  int workers = options_.workers;
  if (workers <= 0) {
    workers = static_cast<int>(std::thread::hardware_concurrency());
    if (workers <= 0) workers = 2;
  }
  workers_.reserve(static_cast<std::size_t>(workers));
  for (int i = 0; i < workers; ++i) {
    workers_.emplace_back([this] { worker_main(); });
  }
}

CheckService::~CheckService() { shutdown(); }

void CheckService::submit_line(std::string_view line, ResponseSink sink) {
  auto req_or = parse_request(line);
  if (!req_or.is_ok()) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      ++requests_total_;
      ++requests_rejected_;
    }
    // A line that does not even parse has no usable request id; "" tells
    // the client to match the error to its most recent unanswered send.
    sink(error_response("", req_or.status()));
    return;
  }
  submit(std::move(req_or).value(), std::move(sink));
}

void CheckService::submit(ServeRequest request, ResponseSink sink) {
  const Clock::time_point now = Clock::now();

  if (request.op == "status") {
    {
      std::lock_guard<std::mutex> lock(mu_);
      ++requests_total_;
    }
    // stats_json() takes mu_ itself — composed outside the lock above.
    sink(status_response(request.id, stats_json()));
    return;
  }

  if (request.op == "cancel") {
    bool found = false;
    {
      std::lock_guard<std::mutex> lock(mu_);
      ++requests_total_;
      auto it = active_.find(request.target);
      if (it != active_.end()) {
        it->second->cancel.cancel();
        found = true;
        ++cancelled_;
      }
    }
    sink(cancel_ack_response(request.id, request.target, found));
    return;
  }

  auto entry = std::make_shared<Request>();
  entry->req = std::move(request);
  entry->sink = std::move(sink);
  entry->submitted = now;
  if (entry->req.deadline_ms > 0) {
    // The clock starts at submit, not at dequeue: queue wait counts
    // against the deadline, so an overloaded server sheds load instead of
    // silently stretching every request's budget.
    entry->deadline = now + std::chrono::milliseconds(entry->req.deadline_ms);
  }

  {
    std::lock_guard<std::mutex> lock(mu_);
    ++requests_total_;
    if (entry->req.op == "check") ++requests_check_;
    if (entry->req.op == "explore") ++requests_explore_;
    if (entry->req.op == "fuzz") ++requests_fuzz_;
    if (quit_) {
      ++requests_rejected_;
    } else {
      active_[entry->req.id] = entry;
      queue_.push_back(entry);
      cv_.notify_one();
      return;
    }
  }
  entry->sink(error_response(
      entry->req.id, failed_precondition("serve: server is shutting down")));
}

void CheckService::worker_main() {
  for (;;) {
    std::shared_ptr<Request> req;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return quit_ || !queue_.empty(); });
      if (queue_.empty()) return;  // quit_ and drained
      req = std::move(queue_.front());
      queue_.pop_front();
    }
    run_request(req);
  }
}

void CheckService::finish_request(const std::shared_ptr<Request>& req,
                                  std::string_view line) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = active_.find(req->req.id);
    // Only erase our own registration: a duplicate id may have replaced it.
    if (it != active_.end() && it->second == req) active_.erase(it);
    const auto us = std::chrono::duration_cast<std::chrono::microseconds>(
                        Clock::now() - req->submitted)
                        .count();
    record_latency(us > 0 ? static_cast<std::uint64_t>(us) : 0);
  }
  req->sink(line);
}

void CheckService::record_latency(std::uint64_t us) {
  // obs/metrics.h log2 bucketing: bucket 0 holds 0, bucket bit_width(v)
  // holds v >= 1 (== 1 + floor(log2 v)).
  const int bucket = us == 0 ? 0 : std::bit_width(us);
  ++latency_buckets_[static_cast<std::size_t>(bucket)];
  ++latency_count_;
}

void CheckService::run_request(const std::shared_ptr<Request>& req) {
  const ServeRequest& r = req->req;

  auto task_or = modelcheck::make_named_task(r.task);
  if (!task_or.is_ok()) {
    finish_request(req, error_response(r.id, task_or.status()));
    return;
  }
  const modelcheck::NamedTask& task = task_or.value();

  // Build the workload options + the cache key's shape half. The key holds
  // every request knob that can influence the result bytes (report params
  // echo threads/engine even though the graph is invariant to them) plus
  // the checkpoint-layer fingerprint of the graph-shaping inputs.
  modelcheck::ExploreOptions eo;
  modelcheck::FuzzOptions fo;
  std::string cache_key;
  bool cacheable = false;
  std::string hb_mode;
  std::uint64_t hb_budget = 0;

  if (r.op == "explore" || r.op == "check") {
    auto engine_or = modelcheck::parse_engine(r.engine);
    if (!engine_or.is_ok()) {
      finish_request(req, error_response(r.id, engine_or.status()));
      return;
    }
    auto reduction_or = modelcheck::parse_reduction(r.reduction);
    if (!reduction_or.is_ok()) {
      finish_request(req, error_response(r.id, reduction_or.status()));
      return;
    }
    eo.threads = r.threads;
    eo.engine = engine_or.value();
    eo.reduction = reduction_or.value();
    if (r.max_nodes > 0) eo.max_nodes = r.max_nodes;  // 0 = engine default
    eo.allow_truncation = r.allow_truncation;
    if (r.op == "explore") {
      eo.max_levels = static_cast<std::uint32_t>(r.max_levels);
    }
    eo.checkpoint_label = task.name;
    eo.cancel = &req->cancel;
    eo.deadline = req->deadline;
    hb_mode = modelcheck::reduction_name(eo.reduction);
    hb_budget = eo.max_nodes;
    cache_key = r.op + "|" + r.task + "|threads=" + std::to_string(r.threads) +
                "|engine=" + r.engine + "|max_levels=" +
                std::to_string(r.op == "explore" ? r.max_levels : 0) +
                "|solo=" + std::to_string(r.op == "check" ? r.solo_node_bound
                                                          : 0) +
                "|maxviol=" +
                std::to_string(r.op == "check" ? r.max_violations : 0) +
                "|fp=" +
                hex64(modelcheck::explore_fingerprint(
                    *task.protocol, eo, /*has_flag_fn=*/false,
                    /*initial_flag=*/0));
    cacheable = true;
  } else {  // fuzz
    fo.runs = r.runs;
    fo.seed = r.seed;
    fo.coverage_guided = r.coverage;
    fo.stop_after_runs = r.stop_after_runs;
    fo.checkpoint_path = r.checkpoint_path;
    fo.max_violations = r.max_violations;
    fo.checkpoint_label = task.name;
    fo.cancel = &req->cancel;
    fo.deadline = req->deadline;
    hb_mode = fo.coverage_guided ? "coverage" : "blind";
    hb_budget = fo.runs;
    cache_key =
        "fuzz|" + r.task + "|fp=" +
        hex64(modelcheck::fuzz_fingerprint(*task.protocol, fo));
    // Blind fuzz and checkpoint-writing campaigns are never cached: the
    // first is the conservative line (its report is deterministic per
    // request, but nothing enforces that invariant here), the second has
    // filesystem side effects a replayed response would silently skip.
    cacheable = fo.coverage_guided && fo.checkpoint_path.empty();
  }
  cacheable = cacheable && options_.cache_capacity > 0;

  if (cacheable) {
    std::string hit_line;
    {
      std::lock_guard<std::mutex> lock(mu_);
      auto it = cache_index_.find(cache_key);
      if (it != cache_index_.end()) {
        cache_lru_.splice(cache_lru_.begin(), cache_lru_, it->second);
        ++cache_hits_;
        const CachedResult& hit = cache_lru_.front().second;
        // finish_request relocks mu_; render inside, emit outside.
        hit_line = report_response(r.id, hit.exit_code, /*cached=*/true,
                                   hit.human, hit.report_json);
      } else {
        ++cache_misses_;
      }
    }
    if (!hit_line.empty()) {
      finish_request(req, hit_line);
      return;
    }
  }

  // Per-request heartbeat stream, multiplexed onto the same sink as the
  // final report. The request id is the run_id nonce: concurrent requests
  // for the same (task, budget) stream under distinct run_ids, and a
  // client re-issuing the same logical request gets the same run_id back.
  std::unique_ptr<obs::HeartbeatSampler> sampler;
  if (r.heartbeat_ms > 0) {
    obs::HeartbeatOptions hb;
    hb.tool = "lbsa_serverd";
    hb.task = task.name;
    hb.run_id =
        obs::derive_run_id("lbsa_serverd", task.name, hb_mode, hb_budget, r.id);
    hb.interval_ms = r.heartbeat_ms;
    hb.sink = [req](std::string_view line) {
      req->sink(heartbeat_response(req->req.id, line));
    };
    sampler = std::make_unique<obs::HeartbeatSampler>(std::move(hb));
    if (const Status s = sampler->start(); !s.is_ok()) {
      finish_request(req, error_response(r.id, s));
      return;
    }
  }

  modelcheck::TaskRunResult result;
  if (r.op == "explore") {
    modelcheck::ExploreTaskSpec spec;
    spec.options = std::move(eo);
    result = modelcheck::run_explore_task(task, spec);
  } else if (r.op == "check") {
    modelcheck::CheckTaskSpec spec;
    spec.options.explore = std::move(eo);
    spec.options.solo_node_bound = r.solo_node_bound;
    spec.options.max_violations = r.max_violations;
    result = modelcheck::run_check_task(task, spec);
  } else {
    modelcheck::FuzzTaskSpec spec;
    spec.options = std::move(fo);
    modelcheck::FuzzTaskRunResult fuzz = modelcheck::run_fuzz_task(task, spec);
    result = std::move(static_cast<modelcheck::TaskRunResult&>(fuzz));
  }

  // The final heartbeat line ("final":true) lands before the report line,
  // so the report is always the request's last response.
  if (sampler != nullptr) {
    if (const Status s = sampler->stop(); !s.is_ok()) {
      // The workload finished; a heartbeat teardown problem must not turn
      // the answer into an error. Drop the stream error on the floor.
    }
  }

  if (!result.report_valid) {
    const Status status =
        result.exit_code == 2 ? invalid_argument(result.error)
                              : internal_error(result.error);
    {
      std::lock_guard<std::mutex> lock(mu_);
      ++requests_rejected_;
    }
    finish_request(req, error_response(r.id, status));
    return;
  }

  // Deterministic serialization: no wall-clock, no process-wide metrics
  // registry (which concurrent requests would cross-pollute) — a cache hit
  // must replay these bytes exactly.
  result.report.tool = "lbsa_serverd";
  result.report.wall_seconds = 0.0;
  const std::string report_json = result.report.to_json();

  // Interrupted runs (exit 4: deadline/cancel tripped mid-flight) are
  // lifecycle artifacts of THIS request, not properties of the task —
  // never cached.
  if (cacheable && result.exit_code != 4) {
    std::lock_guard<std::mutex> lock(mu_);
    if (cache_index_.find(cache_key) == cache_index_.end()) {
      cache_lru_.emplace_front(
          cache_key,
          CachedResult{result.exit_code, result.human, report_json});
      cache_index_[cache_key] = cache_lru_.begin();
      while (cache_lru_.size() > options_.cache_capacity) {
        cache_index_.erase(cache_lru_.back().first);
        cache_lru_.pop_back();
      }
    }
  }

  finish_request(req,
                 report_response(r.id, result.exit_code, /*cached=*/false,
                                 result.human, report_json));
}

std::string CheckService::stats_json() const {
  std::lock_guard<std::mutex> lock(mu_);
  obs::JsonWriter w;
  w.begin_object();
  w.key("requests_total");
  w.value_uint(requests_total_);
  w.key("by_op");
  w.begin_object();
  w.key("check");
  w.value_uint(requests_check_);
  w.key("explore");
  w.value_uint(requests_explore_);
  w.key("fuzz");
  w.value_uint(requests_fuzz_);
  w.end_object();
  w.key("rejected");
  w.value_uint(requests_rejected_);
  w.key("cancelled");
  w.value_uint(cancelled_);
  w.key("active");
  w.value_uint(active_.size());
  w.key("queued");
  w.value_uint(queue_.size());
  w.key("cache");
  w.begin_object();
  w.key("hits");
  w.value_uint(cache_hits_);
  w.key("misses");
  w.value_uint(cache_misses_);
  w.key("entries");
  w.value_uint(cache_lru_.size());
  w.key("capacity");
  w.value_uint(options_.cache_capacity);
  w.end_object();
  const obs::HistogramQuantiles q =
      obs::quantiles_from_buckets(latency_buckets_, latency_count_);
  w.key("latency_us");
  w.begin_object();
  w.key("count");
  w.value_uint(latency_count_);
  w.key("p50");
  w.value_uint(q.p50);
  w.key("p90");
  w.value_uint(q.p90);
  w.key("p99");
  w.value_uint(q.p99);
  w.key("max");
  w.value_uint(q.max);
  w.end_object();
  w.end_object();
  return std::move(w).str();
}

void CheckService::shutdown() {
  std::deque<std::shared_ptr<Request>> orphans;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (quit_ && workers_.empty()) return;
    quit_ = true;
    orphans.swap(queue_);
    cv_.notify_all();
  }
  for (const auto& req : orphans) {
    finish_request(req,
                   error_response(req->req.id, failed_precondition(
                                      "serve: server is shutting down")));
  }
  for (std::thread& t : workers_) t.join();
  workers_.clear();
}

}  // namespace lbsa::serve
