#include "serve/protocol.h"

#include <cstdint>
#include <string>
#include <string_view>

#include "obs/json.h"

namespace lbsa::serve {
namespace {

using obs::JsonValue;

Status bad(std::string_view what) {
  return invalid_argument("serve request: " + std::string(what));
}

// Typed field readers; each rejects wrong-typed values loudly rather than
// falling back to a default (a silently coerced knob is a debugging trap).
Status read_string(const JsonValue& v, std::string_view key,
                   std::string* out) {
  if (!v.is_string()) {
    return bad("\"" + std::string(key) + "\" must be a string");
  }
  *out = v.string_value;
  return Status::ok();
}

Status read_uint(const JsonValue& v, std::string_view key,
                 std::uint64_t* out) {
  if (!v.is_number() || !v.number_is_integer || v.int_value < 0) {
    return bad("\"" + std::string(key) + "\" must be a non-negative integer");
  }
  *out = static_cast<std::uint64_t>(v.int_value);
  return Status::ok();
}

Status read_int(const JsonValue& v, std::string_view key, int* out) {
  if (!v.is_number() || !v.number_is_integer) {
    return bad("\"" + std::string(key) + "\" must be an integer");
  }
  *out = static_cast<int>(v.int_value);
  return Status::ok();
}

Status read_bool(const JsonValue& v, std::string_view key, bool* out) {
  if (v.kind != JsonValue::Kind::kBool) {
    return bad("\"" + std::string(key) + "\" must be a boolean");
  }
  *out = v.bool_value;
  return Status::ok();
}

bool op_takes_graph_knobs(const std::string& op) {
  return op == "check" || op == "explore";
}

}  // namespace

StatusOr<ServeRequest> parse_request(std::string_view line) {
  auto doc_or = obs::parse_json(line);
  if (!doc_or.is_ok()) {
    return invalid_argument("serve request: " +
                            doc_or.status().to_string());
  }
  const JsonValue& doc = doc_or.value();
  if (!doc.is_object()) return bad("top level must be an object");

  // Two passes: find the op first (it decides which knobs are legal), then
  // read every member strictly — an unknown or op-inapplicable key is an
  // error, never a silent default.
  const JsonValue* op_value = doc.find("op");
  if (op_value == nullptr) return bad("missing \"op\"");
  ServeRequest req;
  if (Status s = read_string(*op_value, "op", &req.op); !s.is_ok()) return s;
  if (req.op != "check" && req.op != "explore" && req.op != "fuzz" &&
      req.op != "status" && req.op != "cancel") {
    return bad("unknown op \"" + req.op +
               "\" (want check|explore|fuzz|status|cancel)");
  }

  bool saw_version = false;
  for (const auto& [key, value] : doc.members) {
    Status s = Status::ok();
    if (key == "serve_version") {
      saw_version = true;
      std::uint64_t version = 0;
      s = read_uint(value, key, &version);
      if (s.is_ok() && version != kServeSchemaVersion) {
        s = bad("serve_version " + std::to_string(version) +
                " unsupported (speak version " +
                std::to_string(kServeSchemaVersion) + ")");
      }
    } else if (key == "op") {
      // Parsed above.
    } else if (key == "id") {
      s = read_string(value, key, &req.id);
    } else if (key == "deadline_ms") {
      s = read_uint(value, key, &req.deadline_ms);
    } else if (key == "heartbeat_ms") {
      s = read_uint(value, key, &req.heartbeat_ms);
    } else if (key == "task" && req.op != "status" && req.op != "cancel") {
      s = read_string(value, key, &req.task);
    } else if (key == "target" && req.op == "cancel") {
      s = read_string(value, key, &req.target);
    } else if (key == "threads" && op_takes_graph_knobs(req.op)) {
      s = read_int(value, key, &req.threads);
    } else if (key == "engine" && op_takes_graph_knobs(req.op)) {
      s = read_string(value, key, &req.engine);
    } else if (key == "reduction" && op_takes_graph_knobs(req.op)) {
      s = read_string(value, key, &req.reduction);
    } else if (key == "max_nodes" && op_takes_graph_knobs(req.op)) {
      s = read_uint(value, key, &req.max_nodes);
    } else if (key == "allow_truncation" && op_takes_graph_knobs(req.op)) {
      s = read_bool(value, key, &req.allow_truncation);
    } else if (key == "max_levels" && req.op == "explore") {
      s = read_uint(value, key, &req.max_levels);
    } else if (key == "runs" && req.op == "fuzz") {
      s = read_uint(value, key, &req.runs);
    } else if (key == "seed" && req.op == "fuzz") {
      s = read_uint(value, key, &req.seed);
    } else if (key == "coverage" && req.op == "fuzz") {
      s = read_bool(value, key, &req.coverage);
    } else if (key == "stop_after_runs" && req.op == "fuzz") {
      s = read_uint(value, key, &req.stop_after_runs);
    } else if (key == "checkpoint_path" && req.op == "fuzz") {
      s = read_string(value, key, &req.checkpoint_path);
    } else if (key == "solo_node_bound" && req.op == "check") {
      s = read_uint(value, key, &req.solo_node_bound);
    } else if (key == "max_violations" &&
               (req.op == "check" || req.op == "fuzz")) {
      s = read_int(value, key, &req.max_violations);
    } else {
      s = bad("unknown field \"" + key + "\" for op \"" + req.op + "\"");
    }
    if (!s.is_ok()) return s;
  }

  if (!saw_version) return bad("missing \"serve_version\"");
  if (req.id.empty()) return bad("missing \"id\"");
  if (req.task.empty() && req.op != "status" && req.op != "cancel") {
    return bad("op \"" + req.op + "\" needs a \"task\"");
  }
  if (req.op == "cancel" && req.target.empty()) {
    return bad("op \"cancel\" needs a \"target\" request id");
  }
  return req;
}

namespace {

obs::JsonWriter response_head(const std::string& request_id,
                              std::string_view type) {
  obs::JsonWriter w;
  w.begin_object();
  w.key("serve_version");
  w.value_uint(kServeSchemaVersion);
  w.key("request_id");
  w.value_string(request_id);
  w.key("type");
  w.value_string(type);
  return w;
}

}  // namespace

std::string heartbeat_response(const std::string& request_id,
                               std::string_view heartbeat_line) {
  obs::JsonWriter w = response_head(request_id, "heartbeat");
  w.key("data");
  w.value_string(heartbeat_line);
  w.end_object();
  return std::move(w).str();
}

std::string report_response(const std::string& request_id, int exit_code,
                            bool cached, std::string_view human,
                            std::string_view report_json) {
  obs::JsonWriter w = response_head(request_id, "report");
  w.key("exit_code");
  w.value_int(exit_code);
  w.key("cached");
  w.value_bool(cached);
  w.key("human");
  w.value_string(human);
  w.key("report");
  w.value_string(report_json);
  w.end_object();
  return std::move(w).str();
}

std::string error_response(const std::string& request_id,
                           const Status& status) {
  obs::JsonWriter w = response_head(request_id, "error");
  w.key("status");
  w.value_string(status_code_name(status.code()));
  w.key("message");
  w.value_string(status.message());
  w.end_object();
  return std::move(w).str();
}

std::string cancel_ack_response(const std::string& request_id,
                                const std::string& target, bool found) {
  obs::JsonWriter w = response_head(request_id, "cancel_ack");
  w.key("target");
  w.value_string(target);
  w.key("found");
  w.value_bool(found);
  w.end_object();
  return std::move(w).str();
}

std::string status_response(const std::string& request_id,
                            std::string_view stats_json) {
  obs::JsonWriter w = response_head(request_id, "status");
  w.key("stats");
  w.value_string(stats_json);
  w.end_object();
  return std::move(w).str();
}

StatusOr<ServeResponse> parse_response(std::string_view line) {
  auto doc_or = obs::parse_json(line);
  if (!doc_or.is_ok()) {
    return invalid_argument("serve response: " +
                            doc_or.status().to_string());
  }
  const JsonValue& doc = doc_or.value();
  if (!doc.is_object()) {
    return invalid_argument("serve response: top level must be an object");
  }
  auto need_string = [&](const char* key, std::string* out) -> Status {
    const JsonValue* v = doc.find(key);
    if (v == nullptr || !v->is_string()) {
      return invalid_argument(std::string("serve response: missing string \"") +
                              key + "\"");
    }
    *out = v->string_value;
    return Status::ok();
  };

  const JsonValue* version = doc.find("serve_version");
  if (version == nullptr || !version->is_number() ||
      !version->number_is_integer ||
      version->int_value != kServeSchemaVersion) {
    return invalid_argument("serve response: bad serve_version");
  }
  ServeResponse resp;
  if (Status s = need_string("request_id", &resp.request_id); !s.is_ok()) {
    return s;
  }
  if (Status s = need_string("type", &resp.type); !s.is_ok()) return s;

  if (resp.type == "heartbeat") {
    return need_string("data", &resp.data).is_ok()
               ? StatusOr<ServeResponse>(std::move(resp))
               : invalid_argument("serve response: heartbeat needs \"data\"");
  }
  if (resp.type == "report") {
    const JsonValue* exit_code = doc.find("exit_code");
    const JsonValue* cached = doc.find("cached");
    if (exit_code == nullptr || !exit_code->is_number() ||
        !exit_code->number_is_integer || cached == nullptr ||
        cached->kind != JsonValue::Kind::kBool) {
      return invalid_argument(
          "serve response: report needs integer \"exit_code\" and boolean "
          "\"cached\"");
    }
    resp.exit_code = static_cast<int>(exit_code->int_value);
    resp.cached = cached->bool_value;
    if (Status s = need_string("human", &resp.human); !s.is_ok()) return s;
    if (Status s = need_string("report", &resp.data); !s.is_ok()) return s;
    return resp;
  }
  if (resp.type == "error") {
    if (Status s = need_string("status", &resp.status_code); !s.is_ok()) {
      return s;
    }
    if (Status s = need_string("message", &resp.message); !s.is_ok()) {
      return s;
    }
    return resp;
  }
  if (resp.type == "cancel_ack") {
    if (Status s = need_string("target", &resp.target); !s.is_ok()) return s;
    const JsonValue* found = doc.find("found");
    if (found == nullptr || found->kind != JsonValue::Kind::kBool) {
      return invalid_argument(
          "serve response: cancel_ack needs boolean \"found\"");
    }
    resp.found = found->bool_value;
    return resp;
  }
  if (resp.type == "status") {
    if (Status s = need_string("stats", &resp.data); !s.is_ok()) return s;
    return resp;
  }
  return invalid_argument("serve response: unknown type \"" + resp.type +
                          "\"");
}

}  // namespace lbsa::serve
