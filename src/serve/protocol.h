// Wire protocol for lbsa_serverd (docs/serving.md): newline-delimited
// strict JSON in both directions over a local stream socket.
//
// Request line:
//   {"serve_version":1,"op":"check"|"explore"|"fuzz"|"status"|"cancel",
//    "id":"<client-chosen request id>", "task":"<named-task key>",
//    "deadline_ms":N, "heartbeat_ms":N, ...op-specific knobs...}
//
// The request id doubles as the heartbeat run-id nonce (derive_run_id's
// nonce component), so two concurrent requests for the same (task, budget)
// stream under distinct run_ids; a client resuming the same logical request
// reuses the id and gets the same run_id back.
//
// Response lines (every line carries serve_version, request_id, type):
//   {"type":"heartbeat","data":"<json-escaped heartbeat line>"}
//   {"type":"report","exit_code":N,"cached":B,"human":"...",
//    "report":"<json-escaped RunReport JSON>"}
//   {"type":"error","status":"invalid_argument","message":"..."}
//   {"type":"status","stats":"<json-escaped stats object>"}   (op = status)
//   {"type":"cancel_ack","target":"...","found":B}   (op = cancel)
//
// Heartbeat lines and RunReports travel as JSON-escaped strings, not nested
// objects: unescaping recovers the producer's exact bytes, so clients can
// run validate_heartbeat_stream / validate_run_report_json and compare
// digests without a re-serialization step in between.
#ifndef LBSA_SERVE_PROTOCOL_H_
#define LBSA_SERVE_PROTOCOL_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "base/status.h"

namespace lbsa::serve {

inline constexpr int kServeSchemaVersion = 1;

// One parsed request. Field defaults mirror the CLI defaults; `op` decides
// which knobs are read.
struct ServeRequest {
  std::string op;      // check | explore | fuzz | status | cancel
  std::string id;      // echoed on every response line; heartbeat nonce
  std::string task;    // named-task key (check/explore/fuzz)
  std::string target;  // cancel: the in-flight request id to cancel

  std::uint64_t deadline_ms = 0;   // 0 = no deadline (from receipt time)
  std::uint64_t heartbeat_ms = 0;  // 0 = no heartbeat stream

  // explore / check
  int threads = 1;
  std::string engine = "auto";
  std::string reduction = "none";
  std::uint64_t max_nodes = 0;  // 0 = engine default
  bool allow_truncation = false;
  std::uint64_t max_levels = 0;

  // fuzz
  std::uint64_t runs = 2000;
  std::uint64_t seed = 1;
  bool coverage = false;
  std::uint64_t stop_after_runs = 0;
  std::string checkpoint_path;  // rejected for blind fuzz (INVALID_ARGUMENT)

  // check
  std::uint64_t solo_node_bound = 100'000;
  int max_violations = 8;
};

// Parses one request line. INVALID_ARGUMENT on malformed JSON, unknown op,
// unknown field (strict: typos must not silently fall back to defaults),
// bad serve_version, or a missing id/task/target the op requires.
StatusOr<ServeRequest> parse_request(std::string_view line);

// Response builders; each returns one strict-JSON line, no trailing
// newline.
std::string heartbeat_response(const std::string& request_id,
                               std::string_view heartbeat_line);
std::string report_response(const std::string& request_id, int exit_code,
                            bool cached, std::string_view human,
                            std::string_view report_json);
std::string error_response(const std::string& request_id,
                           const Status& status);
std::string cancel_ack_response(const std::string& request_id,
                                const std::string& target, bool found);
std::string status_response(const std::string& request_id,
                            std::string_view stats_json);

// One parsed response (client side: lbsa_client, the e2e tests).
struct ServeResponse {
  std::string request_id;
  std::string type;  // heartbeat | report | error | status | cancel_ack
  // heartbeat: the unescaped heartbeat line. report: the unescaped
  // RunReport JSON. status: the unescaped stats JSON object.
  std::string data;
  std::string human;    // report only
  int exit_code = 0;    // report only
  bool cached = false;  // report only
  std::string status_code;  // error only (Status code name)
  std::string message;      // error only
  std::string target;       // cancel_ack only
  bool found = false;       // cancel_ack only
};

// Parses one response line; INVALID_ARGUMENT names the first violation.
StatusOr<ServeResponse> parse_response(std::string_view line);

}  // namespace lbsa::serve

#endif  // LBSA_SERVE_PROTOCOL_H_
