// AF_UNIX front end for CheckService: accepts local stream connections,
// reads newline-delimited protocol.h request lines, and frames the
// service's response lines back onto the connection (one line each,
// newline-terminated). Responses for a connection's concurrent requests
// interleave; every line carries its request_id, so clients demultiplex by
// id, never by order.
//
// Threading: one accept thread, one reader thread per connection. Writes
// are serialized per connection (service workers and heartbeat samplers
// share the socket); a write error marks the connection dead and later
// lines are dropped — the workload still completes and populates the
// result cache.
#ifndef LBSA_SERVE_SERVER_H_
#define LBSA_SERVE_SERVER_H_

#include <atomic>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "serve/service.h"

namespace lbsa::serve {

struct ServerOptions {
  // Path for the listening socket; bound fresh (an existing file at the
  // path is an error unless it is a stale socket left by a dead server,
  // which is unlinked and replaced).
  std::string socket_path;
  ServiceOptions service;
};

class Server {
 public:
  explicit Server(ServerOptions options);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  // Binds, listens, and spawns the accept thread. INTERNAL on socket
  // errors (path too long for sockaddr_un, bind/listen failure).
  Status start();

  // Stops accepting, shuts down live connections (in-flight requests are
  // drained by the service first, so every accepted request is answered),
  // joins all threads, unlinks the socket. Idempotent.
  void stop();

  CheckService& service() { return service_; }

 private:
  struct Connection;

  void accept_main();
  void connection_main(std::shared_ptr<Connection> conn);

  const ServerOptions options_;
  CheckService service_;

  // Atomic: stop() claims the fd (exchange to -1) concurrently with the
  // accept loop re-reading it between accept() calls.
  std::atomic<int> listen_fd_{-1};
  std::thread accept_thread_;
  std::mutex mu_;
  bool stopping_ = false;
  std::vector<std::weak_ptr<Connection>> connections_;
  std::vector<std::thread> readers_;
};

}  // namespace lbsa::serve

#endif  // LBSA_SERVE_SERVER_H_
