#include "modelcheck/valence.h"

#include <algorithm>
#include <bit>
#include <deque>

#include "base/check.h"

namespace lbsa::modelcheck {

ValenceAnalyzer::ValenceAnalyzer(const ConfigGraph& graph) : graph_(graph) {
  const size_t n = graph.nodes().size();
  masks_.assign(n, 0);

  // Pass 1: per-node "own" decisions, building the value universe.
  auto bit_of = [&](Value v) -> std::uint64_t {
    for (size_t i = 0; i < universe_.size(); ++i) {
      if (universe_[i] == v) return 1ULL << i;
    }
    LBSA_CHECK_MSG(universe_.size() < 64,
                   "valence analysis supports at most 64 decision values");
    universe_.push_back(v);
    return 1ULL << (universe_.size() - 1);
  };
  for (size_t id = 0; id < n; ++id) {
    for (const sim::ProcessState& ps : graph.nodes()[id].config.procs) {
      if (ps.decided()) masks_[id] |= bit_of(ps.decision);
    }
  }

  // Reverse adjacency for the fixpoint.
  std::vector<std::vector<std::uint32_t>> preds(n);
  for (size_t from = 0; from < n; ++from) {
    for (const Edge& e : graph.edges()[from]) {
      preds[e.to].push_back(static_cast<std::uint32_t>(from));
    }
  }

  // Worklist fixpoint: mask[u] |= mask[v] for every edge u -> v. Handles
  // cycles (protocols with retry loops) exactly.
  std::deque<std::uint32_t> worklist;
  std::vector<char> queued(n, 1);
  for (std::uint32_t id = 0; id < n; ++id) worklist.push_back(id);
  while (!worklist.empty()) {
    const std::uint32_t v = worklist.front();
    worklist.pop_front();
    queued[v] = 0;
    for (std::uint32_t u : preds[v]) {
      const std::uint64_t merged = masks_[u] | masks_[v];
      if (merged != masks_[u]) {
        masks_[u] = merged;
        if (!queued[u]) {
          queued[u] = 1;
          worklist.push_back(u);
        }
      }
    }
  }
}

int ValenceAnalyzer::reachable_count(std::uint32_t id) const {
  return std::popcount(masks_[id]);
}

Value ValenceAnalyzer::univalent_value(std::uint32_t id) const {
  LBSA_CHECK(is_univalent(id));
  const int bit = std::countr_zero(masks_[id]);
  return universe_[static_cast<size_t>(bit)];
}

std::vector<std::uint32_t> ValenceAnalyzer::critical_nodes() const {
  std::vector<std::uint32_t> out;
  for (std::uint32_t id = 0; id < graph_.nodes().size(); ++id) {
    if (!is_multivalent(id)) continue;
    bool all_successors_univalent = true;
    for (const Edge& e : graph_.edges()[id]) {
      if (!is_univalent(e.to)) {
        all_successors_univalent = false;
        break;
      }
    }
    if (all_successors_univalent && !graph_.edges()[id].empty()) {
      out.push_back(id);
    }
  }
  return out;
}

std::vector<std::uint32_t> ValenceAnalyzer::multivalent_nodes() const {
  std::vector<std::uint32_t> out;
  for (std::uint32_t id = 0; id < graph_.nodes().size(); ++id) {
    if (is_multivalent(id)) out.push_back(id);
  }
  return out;
}

}  // namespace lbsa::modelcheck
