#include "modelcheck/fuzz.h"

#include <algorithm>
#include <set>

#include "base/check.h"
#include "base/rng.h"
#include "sim/simulation.h"
#include "sim/trace.h"

namespace lbsa::modelcheck {
namespace {

// Uniform adversary with geometric bursts: with probability (1 - 1/8) it
// re-picks the process it scheduled last, producing long solo stretches.
class BurstAdversary final : public sim::Adversary {
 public:
  explicit BurstAdversary(std::uint64_t seed) : rng_(seed) {}

  int pick_process(const sim::Config& config,
                   std::uint64_t /*step_index*/) override {
    if (last_ >= 0 && config.enabled(last_) && !rng_.next_bool(0.125)) {
      return last_;
    }
    std::vector<int> enabled;
    for (int pid = 0; pid < static_cast<int>(config.procs.size()); ++pid) {
      if (config.enabled(pid)) enabled.push_back(pid);
    }
    if (enabled.empty()) return kStop;
    last_ = enabled[rng_.next_below(enabled.size())];
    return last_;
  }

  int pick_outcome(int outcome_count, std::uint64_t /*step_index*/) override {
    if (outcome_count <= 1) return 0;
    return static_cast<int>(
        rng_.next_below(static_cast<std::uint64_t>(outcome_count)));
  }

 private:
  Xoshiro256 rng_;
  int last_ = -1;
};

// Per-step safety evaluation shared by both fuzzers. Returns the violated
// property ("" if none).
struct SafetyJudge {
  int k = 1;                     // agreement bound
  std::set<Value> input_set;
  std::vector<Value> inputs;     // per-pid (for DAC validity)
  int distinguished_pid = -1;    // -1 = k-set-agreement mode

  std::pair<std::string, std::string> judge(const sim::Config& config) const {
    std::vector<Value> decided;
    for (const auto& ps : config.procs) {
      if (ps.decided()) decided.push_back(ps.decision);
    }
    std::sort(decided.begin(), decided.end());
    decided.erase(std::unique(decided.begin(), decided.end()),
                  decided.end());
    if (static_cast<int>(decided.size()) > k) {
      return {"agreement",
              std::to_string(decided.size()) + " distinct decisions"};
    }
    for (Value v : decided) {
      if (distinguished_pid < 0) {
        if (!input_set.contains(v)) {
          return {"validity",
                  "decided " + value_to_string(v) + " never proposed"};
        }
      } else {
        bool witnessed = false;
        for (size_t pid = 0; pid < config.procs.size(); ++pid) {
          if (inputs[pid] == v && !config.procs[pid].aborted()) {
            witnessed = true;
          }
        }
        if (!witnessed) {
          return {"validity", "decided " + value_to_string(v) +
                                  " has no non-aborting proposer"};
        }
      }
    }
    for (size_t pid = 0; pid < config.procs.size(); ++pid) {
      if (config.procs[pid].aborted() &&
          static_cast<int>(pid) != distinguished_pid) {
        return {"only-p-aborts",
                "p" + std::to_string(pid) + " aborted"};
      }
    }
    return {"", ""};
  }
};

FuzzReport fuzz(std::shared_ptr<const sim::Protocol> protocol,
                const SafetyJudge& judge, const FuzzOptions& options) {
  FuzzReport report;
  Xoshiro256 meta(options.seed);
  for (std::uint64_t run = 0; run < options.runs; ++run) {
    const std::uint64_t run_seed = meta.next();
    const bool burst = meta.next_bool(options.burst_fraction);
    sim::Simulation simulation(protocol);
    sim::RandomAdversary uniform(run_seed);
    BurstAdversary bursty(run_seed);
    sim::Adversary& adversary =
        burst ? static_cast<sim::Adversary&>(bursty)
              : static_cast<sim::Adversary&>(uniform);

    ++report.runs_executed;
    bool violated = false;
    for (std::uint64_t step = 0;
         step < options.max_steps_per_run && !simulation.config().halted();
         ++step) {
      const int pid = adversary.pick_process(simulation.config(), step);
      if (pid == sim::Adversary::kStop) break;
      const int outcomes =
          sim::outcome_count(*protocol, simulation.config(), pid);
      simulation.step(pid, adversary.pick_outcome(outcomes, step));
      const auto [property, detail] = judge.judge(simulation.config());
      if (!property.empty()) {
        report.violations.push_back(FuzzViolation{
            property, detail, run_seed,
            sim::schedule_to_string(*protocol, simulation.history())});
        violated = true;
        break;
      }
    }
    if (!violated && simulation.config().halted()) {
      ++report.runs_terminated;
    }
    if (static_cast<int>(report.violations.size()) >=
        options.max_violations) {
      break;
    }
  }
  return report;
}

}  // namespace

bool FuzzReport::violates(const std::string& property) const {
  return std::any_of(
      violations.begin(), violations.end(),
      [&](const FuzzViolation& v) { return v.property == property; });
}

FuzzReport fuzz_k_agreement(std::shared_ptr<const sim::Protocol> protocol,
                            int k, const std::vector<Value>& inputs,
                            const FuzzOptions& options) {
  LBSA_CHECK(k >= 1);
  SafetyJudge judge;
  judge.k = k;
  judge.input_set = {inputs.begin(), inputs.end()};
  judge.inputs = inputs;
  judge.distinguished_pid = -1;
  return fuzz(std::move(protocol), judge, options);
}

FuzzReport fuzz_dac(std::shared_ptr<const sim::Protocol> protocol,
                    int distinguished_pid, const std::vector<Value>& inputs,
                    const FuzzOptions& options) {
  SafetyJudge judge;
  judge.k = 1;
  judge.input_set = {inputs.begin(), inputs.end()};
  judge.inputs = inputs;
  judge.distinguished_pid = distinguished_pid;
  return fuzz(std::move(protocol), judge, options);
}

}  // namespace lbsa::modelcheck
