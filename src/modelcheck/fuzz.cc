#include "modelcheck/fuzz.h"

#include <algorithm>
#include <atomic>
#include <deque>
#include <set>
#include <thread>
#include <unordered_set>
#include <utility>

#include "base/check.h"
#include "base/hashing.h"
#include "base/rng.h"
#include "modelcheck/checkpoint.h"
#include "obs/obs.h"
#include "sim/simulation.h"
#include "sim/trace.h"

namespace lbsa::modelcheck {
namespace {

using sim::ScriptedAdversary;

// Polled at run boundaries; stop_after_runs is handled by the coverage
// engine only (see FuzzOptions).
bool lifecycle_stop(const FuzzOptions& options) {
  if (options.cancel != nullptr && options.cancel->cancelled()) return true;
  return deadline_passed(options.deadline);
}

// Uniform adversary with geometric bursts: with probability (1 - 1/8) it
// re-picks the process it scheduled last, producing long solo stretches.
class BurstAdversary final : public sim::Adversary {
 public:
  explicit BurstAdversary(std::uint64_t seed) : rng_(seed) {}

  int pick_process(const sim::Config& config,
                   std::uint64_t /*step_index*/) override {
    if (last_ >= 0 && config.enabled(last_) && !rng_.next_bool(0.125)) {
      return last_;
    }
    std::vector<int> enabled;
    for (int pid = 0; pid < static_cast<int>(config.procs.size()); ++pid) {
      if (config.enabled(pid)) enabled.push_back(pid);
    }
    if (enabled.empty()) return kStop;
    last_ = enabled[rng_.next_below(enabled.size())];
    return last_;
  }

  int pick_outcome(int outcome_count, std::uint64_t /*step_index*/) override {
    if (outcome_count <= 1) return 0;
    return static_cast<int>(
        rng_.next_below(static_cast<std::uint64_t>(outcome_count)));
  }

 private:
  Xoshiro256 rng_;
  int last_ = -1;
};

// Everything a single fuzz run produces; merged into the report in run
// order so the report is independent of execution order.
struct RunOutput {
  bool terminated = false;
  bool violated = false;
  std::string property;
  std::string detail;
  std::vector<ScriptedAdversary::Choice> schedule;  // executed steps
  std::vector<std::uint64_t> fingerprints;  // first-K distinct, in order
};

// One fresh adversary-driven run, recording the executed schedule, the
// per-step configuration fingerprints, and the first violation (if any).
RunOutput execute_fresh_run(const std::shared_ptr<const sim::Protocol>& protocol,
                            const SafetyPredicate& judge, std::uint64_t seed,
                            bool burst, const FuzzOptions& options,
                            bool record_clean_schedule) {
  RunOutput out;
  // Live execution tallies are volatile: the blind engine keeps executing
  // already-claimed runs past the deterministic early-stop cutoff, so the
  // number of executions (unlike the report's runs_executed) is
  // schedule-dependent.
  LBSA_OBS_COUNTER_ADD_V("fuzz.exec.runs", 1);
  sim::Simulation simulation(protocol);
  sim::RandomAdversary uniform(seed);
  BurstAdversary bursty(seed);
  sim::Adversary& adversary = burst
                                  ? static_cast<sim::Adversary&>(bursty)
                                  : static_cast<sim::Adversary&>(uniform);
  std::unordered_set<std::uint64_t> seen;
  std::vector<std::int64_t> encoded;
  for (std::uint64_t step = 0;
       step < options.max_steps_per_run && !simulation.config().halted();
       ++step) {
    const int pid = adversary.pick_process(simulation.config(), step);
    if (pid == sim::Adversary::kStop) break;
    const int outcomes =
        sim::outcome_count(*protocol, simulation.config(), pid);
    const int outcome = adversary.pick_outcome(outcomes, step);
    simulation.step(pid, outcome);
    out.schedule.push_back({pid, outcome, false});
    if (seen.size() < options.max_fingerprints_per_run) {
      simulation.config().encode_into(&encoded);
      const std::uint64_t h = hash_words(encoded);
      if (seen.insert(h).second) out.fingerprints.push_back(h);
    }
    auto [property, detail] = judge(simulation.config());
    if (!property.empty()) {
      out.property = std::move(property);
      out.detail = std::move(detail);
      out.violated = true;
      return out;
    }
  }
  out.terminated = simulation.config().halted();
  if (!record_clean_schedule) out.schedule.clear();
  return out;
}

// One mutated run: lenient replay of the mutated schedule (the guided
// prefix), then a fresh random/burst continuation to termination — so a
// mutated run explores just as deep as a blind one, but starts from an
// interesting region instead of the initial configuration. The recorded
// schedule is the effective one — always strict-valid.
RunOutput execute_mutated_run(
    const std::shared_ptr<const sim::Protocol>& protocol,
    const SafetyPredicate& judge,
    const std::vector<ScriptedAdversary::Choice>& prefix, std::uint64_t seed,
    bool burst, const FuzzOptions& options) {
  RunOutput out;
  LBSA_OBS_COUNTER_ADD_V("fuzz.exec.runs", 1);
  sim::Simulation simulation(protocol);
  const int n = simulation.process_count();
  std::unordered_set<std::uint64_t> seen;
  std::vector<std::int64_t> encoded;

  // Records one executed step, its fingerprint, and the first violation;
  // true means the run is over.
  auto record_step = [&](int pid, int outcome) -> bool {
    out.schedule.push_back({pid, outcome, false});
    if (seen.size() < options.max_fingerprints_per_run) {
      simulation.config().encode_into(&encoded);
      const std::uint64_t h = hash_words(encoded);
      if (seen.insert(h).second) out.fingerprints.push_back(h);
    }
    auto [property, detail] = judge(simulation.config());
    if (!property.empty()) {
      out.property = std::move(property);
      out.detail = std::move(detail);
      out.violated = true;
      return true;
    }
    return false;
  };

  // Phase 1: lenient replay of the mutated prefix (same semantics as
  // run_schedule_lenient).
  for (const ScriptedAdversary::Choice& choice : prefix) {
    if (choice.pid < 0 || choice.pid >= n) continue;
    if (choice.crash) {
      if (!simulation.config().procs[static_cast<size_t>(choice.pid)]
               .running()) {
        continue;
      }
      simulation.crash(choice.pid);
      out.schedule.push_back({choice.pid, 0, true});
      continue;
    }
    if (!simulation.config().enabled(choice.pid)) continue;
    const int outcomes =
        sim::outcome_count(*protocol, simulation.config(), choice.pid);
    const int outcome =
        (choice.outcome >= 0 && choice.outcome < outcomes) ? choice.outcome
                                                           : 0;
    simulation.step(choice.pid, outcome);
    if (record_step(choice.pid, outcome)) return out;
    if (out.schedule.size() >= options.max_steps_per_run) return out;
  }

  // Phase 2: random continuation until termination or budget.
  sim::RandomAdversary uniform(seed);
  BurstAdversary bursty(seed);
  sim::Adversary& adversary = burst
                                  ? static_cast<sim::Adversary&>(bursty)
                                  : static_cast<sim::Adversary&>(uniform);
  for (std::uint64_t step = out.schedule.size();
       step < options.max_steps_per_run && !simulation.config().halted();
       ++step) {
    const int pid = adversary.pick_process(simulation.config(), step);
    if (pid == sim::Adversary::kStop) break;
    const int outcomes =
        sim::outcome_count(*protocol, simulation.config(), pid);
    const int outcome = adversary.pick_outcome(outcomes, step);
    simulation.step(pid, outcome);
    if (record_step(pid, outcome)) return out;
  }
  out.terminated = simulation.config().halted();
  return out;
}

// Mutation kinds, in the order rng.next_below(3) selects them.
constexpr int kMutationKinds = 3;
constexpr const char* kMutationName[kMutationKinds] = {"splice", "burst",
                                                       "crash"};

// Per-kind yield counters (LBSA_OBS_COUNTER_ADD caches one handle per call
// site, so runtime-selected names need their own handle table). The
// coverage engine is serial and seed-deterministic, so these are stable.
obs::Counter* mutation_counter(int kind, bool interesting) {
  auto make = [](int k, bool fresh) {
    std::string name = std::string("fuzz.mutation.") + kMutationName[k];
    if (fresh) name += ".interesting";
    return obs::Registry::global().counter(name);
  };
  static obs::Counter* const applied[kMutationKinds] = {
      make(0, false), make(1, false), make(2, false)};
  static obs::Counter* const found_fresh[kMutationKinds] = {
      make(0, true), make(1, true), make(2, true)};
  return interesting ? found_fresh[kind] : applied[kind];
}

// Pool mutations: splice two interesting schedules, insert a solo burst,
// or inject a crash event. Deterministic in `rng`; *kind_out reports which
// mutation was applied (an index into kMutationName).
std::vector<ScriptedAdversary::Choice> mutate_schedule(
    const std::deque<std::vector<ScriptedAdversary::Choice>>& pool,
    int process_count, Xoshiro256& rng, int* kind_out) {
  std::vector<ScriptedAdversary::Choice> base =
      pool[rng.next_below(pool.size())];
  const int kind = static_cast<int>(rng.next_below(kMutationKinds));
  *kind_out = kind;
  switch (kind) {
    case 0: {  // splice: prefix of base + suffix of another pool entry
      const auto& other = pool[rng.next_below(pool.size())];
      const std::size_t cut_a = rng.next_below(base.size() + 1);
      const std::size_t cut_b = rng.next_below(other.size() + 1);
      base.resize(cut_a);
      base.insert(base.end(), other.begin() + static_cast<std::ptrdiff_t>(cut_b),
                  other.end());
      return base;
    }
    case 1: {  // burst-insert: a solo stretch of one process
      const std::size_t pos = rng.next_below(base.size() + 1);
      const int pid = static_cast<int>(
          rng.next_below(static_cast<std::uint64_t>(process_count)));
      const std::size_t len = 1 + rng.next_below(16);
      std::vector<ScriptedAdversary::Choice> burst(
          len, {pid, static_cast<int>(rng.next_below(4)), false});
      base.insert(base.begin() + static_cast<std::ptrdiff_t>(pos),
                  burst.begin(), burst.end());
      return base;
    }
    default: {  // crash-insert
      const std::size_t pos = rng.next_below(base.size() + 1);
      const int pid = static_cast<int>(
          rng.next_below(static_cast<std::uint64_t>(process_count)));
      base.insert(base.begin() + static_cast<std::ptrdiff_t>(pos),
                  {pid, 0, true});
      return base;
    }
  }
}

// Merges per-run outputs (in run order) into the report: fingerprint
// union, termination counts, violations up to max_violations. Returns at
// the deterministic early-stop cutoff.
void aggregate_in_order(const std::vector<RunOutput>& outputs,
                        const std::vector<std::uint64_t>& run_seeds,
                        std::uint64_t count, const FuzzOptions& options,
                        FuzzReport* report,
                        std::vector<std::vector<ScriptedAdversary::Choice>>*
                            violation_schedules) {
  std::unordered_set<std::uint64_t> global;
  for (std::uint64_t i = 0; i < count; ++i) {
    const RunOutput& out = outputs[i];
    ++report->runs_executed;
    bool fresh = false;
    for (std::uint64_t h : out.fingerprints) {
      if (global.insert(h).second) fresh = true;
    }
    if (fresh) ++report->interesting_runs;
    if (out.terminated) ++report->runs_terminated;
    if (out.violated) {
      FuzzViolation v;
      v.property = out.property;
      v.detail = out.detail;
      v.run_seed = run_seeds[i];
      report->violations.push_back(std::move(v));
      violation_schedules->push_back(out.schedule);
      if (static_cast<int>(report->violations.size()) >=
          options.max_violations) {
        break;
      }
    }
  }
  report->distinct_fingerprints = global.size();
}

// Fills in the schedule strings, shrinking each violation when enabled.
void finalize_violations(
    const std::shared_ptr<const sim::Protocol>& protocol,
    const SafetyPredicate& judge, const FuzzOptions& options,
    const std::vector<std::vector<ScriptedAdversary::Choice>>& schedules,
    FuzzReport* report) {
  for (std::size_t i = 0; i < report->violations.size(); ++i) {
    FuzzViolation& v = report->violations[i];
    v.schedule = sim::schedule_to_string(schedules[i]);
    v.raw_steps = schedules[i].size();
    if (options.shrink_violations) {
      ShrinkStats stats;
      const auto shrunk = shrink_schedule(protocol, schedules[i], judge,
                                          v.property, options.shrink, &stats);
      v.shrunk_schedule = sim::schedule_to_string(shrunk);
      v.shrunk_steps = shrunk.size();
      report->shrink_replays += stats.replays;
    } else {
      v.shrunk_schedule = v.schedule;
      v.shrunk_steps = v.raw_steps;
    }
  }
}

// Blind engine: independent pre-seeded runs, optionally across threads.
// Work is claimed from an atomic counter (so the claimed set is always a
// contiguous prefix), every claimed run completes, and the results are
// merged in run order — which makes the report byte-identical for every
// thread count, early stop included.
FuzzReport fuzz_blind(const std::shared_ptr<const sim::Protocol>& protocol,
                      const SafetyPredicate& judge,
                      const FuzzOptions& options) {
  FuzzReport report;
  report.seed = options.seed;
  report.engine = "blind";
  const std::uint64_t budget = options.runs;
  if (budget == 0) return report;

  std::vector<std::uint64_t> run_seeds(budget);
  std::vector<bool> run_burst(budget);
  Xoshiro256 meta(options.seed);
  for (std::uint64_t i = 0; i < budget; ++i) {
    run_seeds[i] = meta.next();
    run_burst[i] = meta.next_bool(options.burst_fraction);
  }

  std::vector<RunOutput> outputs(budget);
  std::atomic<std::uint64_t> next{0};
  std::atomic<int> violations_found{0};
  std::atomic<bool> stop{false};
  std::atomic<bool> cancelled{false};

  auto worker = [&](int widx) {
    // Per-worker lane; excluded from trace-count determinism comparisons.
    obs::Span span("fuzz.worker", obs::kCatWorker, widx + 1);
    while (!stop.load(std::memory_order_relaxed)) {
      if (lifecycle_stop(options)) {
        // Already-claimed runs complete (the aggregated prefix stays
        // contiguous); no new ones start.
        cancelled.store(true, std::memory_order_relaxed);
        stop.store(true, std::memory_order_relaxed);
        break;
      }
      const std::uint64_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= budget) break;
      outputs[i] = execute_fresh_run(protocol, judge, run_seeds[i],
                                     run_burst[i], options,
                                     /*record_clean_schedule=*/false);
      if (outputs[i].violated &&
          violations_found.fetch_add(1) + 1 >= options.max_violations) {
        stop.store(true, std::memory_order_relaxed);
      }
    }
  };

  int threads = options.threads;
  if (threads <= 0) {
    threads = static_cast<int>(std::thread::hardware_concurrency());
    if (threads <= 0) threads = 1;
  }
  threads = static_cast<int>(
      std::min<std::uint64_t>(static_cast<std::uint64_t>(threads), budget));
  report.threads = threads;
  if (threads <= 1) {
    worker(0);
  } else {
    std::vector<std::thread> workers;
    workers.reserve(static_cast<std::size_t>(threads));
    for (int t = 0; t < threads; ++t) workers.emplace_back(worker, t);
    for (std::thread& w : workers) w.join();
  }

  const std::uint64_t claimed = std::min(next.load(), budget);
  report.interrupted = cancelled.load() && claimed < budget;
  std::vector<std::vector<ScriptedAdversary::Choice>> schedules;
  aggregate_in_order(outputs, run_seeds, claimed, options, &report,
                     &schedules);
  finalize_violations(protocol, judge, options, schedules, &report);
  return report;
}

// Coverage-guided engine (serial): fingerprints feed an interesting-
// schedule pool that mutations breed from.
//
// Checkpoints are taken at run boundaries, before any of the next run's
// RNG draws, and capture the meta stream position, the coverage set, the
// pool, and the raw (unshrunk) violations. Shrinking runs once, at
// campaign end, so a resumed campaign's final report — shrink_replays
// included — is byte-identical to an uninterrupted one.
FuzzReport fuzz_coverage(const std::shared_ptr<const sim::Protocol>& protocol,
                         const SafetyPredicate& judge,
                         const FuzzOptions& options,
                         std::uint64_t fingerprint) {
  FuzzReport report;
  report.seed = options.seed;
  report.engine = "coverage";
  report.threads = 1;
  Xoshiro256 meta(options.seed);
  std::unordered_set<std::uint64_t> global;
  std::deque<std::vector<ScriptedAdversary::Choice>> pool;
  std::vector<std::vector<ScriptedAdversary::Choice>> schedules;

  std::uint64_t start_run = 0;
  if (options.resume != nullptr) {
    const FuzzCheckpoint& cp = *options.resume;
    start_run = cp.runs_completed;
    meta.set_state(cp.rng_state);
    global.insert(cp.global_fingerprints.begin(),
                  cp.global_fingerprints.end());
    for (const std::string& s : cp.pool) {
      auto schedule = sim::parse_schedule(s);
      LBSA_CHECK_MSG(schedule.is_ok(),
                     "fuzz resume: unparseable pool schedule");
      pool.push_back(std::move(schedule).value());
    }
    report.runs_executed = cp.runs_completed;
    report.runs_terminated = cp.runs_terminated;
    report.interesting_runs = cp.interesting_runs;
    report.mutated_runs = cp.mutated_runs;
    for (const FuzzCheckpoint::RawViolation& rv : cp.violations) {
      FuzzViolation v;
      v.property = rv.property;
      v.detail = rv.detail;
      v.run_seed = rv.run_seed;
      report.violations.push_back(std::move(v));
      auto schedule = sim::parse_schedule(rv.schedule);
      LBSA_CHECK_MSG(schedule.is_ok(),
                     "fuzz resume: unparseable violation schedule");
      schedules.push_back(std::move(schedule).value());
    }
  }

  auto write_checkpoint = [&](std::uint64_t runs_completed) -> Status {
    FuzzCheckpoint cp;
    cp.fingerprint = fingerprint;
    cp.task_label = options.checkpoint_label;
    cp.runs_completed = runs_completed;
    cp.rng_state = meta.state();
    cp.global_fingerprints.assign(global.begin(), global.end());
    // Only membership matters in-memory; sorting makes the file (and so
    // any checkpoint-level comparison) deterministic.
    std::sort(cp.global_fingerprints.begin(), cp.global_fingerprints.end());
    cp.pool.reserve(pool.size());
    for (const auto& schedule : pool) {
      cp.pool.push_back(sim::schedule_to_string(schedule));
    }
    cp.runs_terminated = report.runs_terminated;
    cp.interesting_runs = report.interesting_runs;
    cp.mutated_runs = report.mutated_runs;
    cp.violations.reserve(report.violations.size());
    for (std::size_t i = 0; i < report.violations.size(); ++i) {
      FuzzCheckpoint::RawViolation rv;
      rv.property = report.violations[i].property;
      rv.detail = report.violations[i].detail;
      rv.run_seed = report.violations[i].run_seed;
      rv.schedule = sim::schedule_to_string(schedules[i]);
      rv.raw_steps = schedules[i].size();
      cp.violations.push_back(std::move(rv));
    }
    LBSA_OBS_COUNTER_ADD_V("fuzz.checkpoint.writes", 1);
    return write_fuzz_checkpoint(cp, options.checkpoint_path);
  };

  for (std::uint64_t run = start_run; run < options.runs; ++run) {
    // Run boundary: no RNG draw for this run has happened yet, so a
    // checkpoint taken here resumes with an identical stream.
    const std::uint64_t session_runs = run - start_run;
    const bool stop_requested =
        lifecycle_stop(options) || (options.stop_after_runs > 0 &&
                                    session_runs >= options.stop_after_runs);
    if (stop_requested) {
      report.interrupted = true;
      if (!options.checkpoint_path.empty()) {
        const Status written = write_checkpoint(run);
        if (!written.is_ok()) report.checkpoint_error = written.to_string();
      }
      break;
    }
    if (!options.checkpoint_path.empty() &&
        options.checkpoint_every_runs > 0 && session_runs > 0 &&
        session_runs % options.checkpoint_every_runs == 0) {
      const Status written = write_checkpoint(run);
      if (!written.is_ok()) {
        report.checkpoint_error = written.to_string();
        break;
      }
    }
    const std::uint64_t run_seed = meta.next();
    const bool burst = meta.next_bool(options.burst_fraction);
    const bool mutate =
        !pool.empty() && meta.next_bool(options.mutation_fraction);

    RunOutput out;
    int mutation_kind = -1;
    if (mutate) {
      ++report.mutated_runs;
      Xoshiro256 rng(run_seed);
      const auto mutated = mutate_schedule(pool, protocol->process_count(),
                                           rng, &mutation_kind);
      mutation_counter(mutation_kind, /*interesting=*/false)->add(1);
      out = execute_mutated_run(protocol, judge, mutated, rng.next(), burst,
                                options);
    } else {
      out = execute_fresh_run(protocol, judge, run_seed, burst, options,
                              /*record_clean_schedule=*/true);
    }

    ++report.runs_executed;
    if (out.terminated) ++report.runs_terminated;
    bool fresh = false;
    for (std::uint64_t h : out.fingerprints) {
      if (global.insert(h).second) fresh = true;
    }
    if (fresh) {
      ++report.interesting_runs;
      // Mutation-kind yield: which mutations actually grow coverage.
      if (mutation_kind >= 0) {
        mutation_counter(mutation_kind, /*interesting=*/true)->add(1);
      }
      pool.push_back(out.schedule);
      while (pool.size() > options.pool_limit) pool.pop_front();
      LBSA_OBS_GAUGE_MAX("fuzz.pool.peak", pool.size());
    }
    if (out.violated) {
      FuzzViolation v;
      v.property = out.property;
      v.detail = out.detail;
      v.run_seed = run_seed;
      report.violations.push_back(std::move(v));
      schedules.push_back(std::move(out.schedule));
      if (static_cast<int>(report.violations.size()) >=
          options.max_violations) {
        break;
      }
    }
  }
  report.distinct_fingerprints = global.size();
  finalize_violations(protocol, judge, options, schedules, &report);
  return report;
}

}  // namespace

bool FuzzReport::violates(const std::string& property) const {
  return std::any_of(
      violations.begin(), violations.end(),
      [&](const FuzzViolation& v) { return v.property == property; });
}

SafetyPredicate k_agreement_safety(int k, std::vector<Value> inputs) {
  LBSA_CHECK(k >= 1);
  std::set<Value> input_set(inputs.begin(), inputs.end());
  return [k, input_set = std::move(input_set)](const sim::Config& config)
             -> std::pair<std::string, std::string> {
    std::vector<Value> decided;
    for (const auto& ps : config.procs) {
      if (ps.decided()) decided.push_back(ps.decision);
    }
    std::sort(decided.begin(), decided.end());
    decided.erase(std::unique(decided.begin(), decided.end()), decided.end());
    if (static_cast<int>(decided.size()) > k) {
      return {"agreement",
              std::to_string(decided.size()) + " distinct decisions"};
    }
    for (Value v : decided) {
      if (!input_set.contains(v)) {
        return {"validity",
                "decided " + value_to_string(v) + " never proposed"};
      }
    }
    for (std::size_t pid = 0; pid < config.procs.size(); ++pid) {
      if (config.procs[pid].aborted()) {
        // Matches check_k_agreement_task's property name for the same
        // condition (k-set agreement has no distinguished process).
        return {"no-abort", "p" + std::to_string(pid) + " aborted"};
      }
    }
    return {"", ""};
  };
}

SafetyPredicate dac_safety(int distinguished_pid, std::vector<Value> inputs) {
  return [distinguished_pid, inputs = std::move(inputs)](
             const sim::Config& config)
             -> std::pair<std::string, std::string> {
    std::vector<Value> decided;
    for (const auto& ps : config.procs) {
      if (ps.decided()) decided.push_back(ps.decision);
    }
    std::sort(decided.begin(), decided.end());
    decided.erase(std::unique(decided.begin(), decided.end()), decided.end());
    if (decided.size() > 1) {
      return {"agreement",
              std::to_string(decided.size()) + " distinct decisions"};
    }
    for (Value v : decided) {
      bool witnessed = false;
      for (std::size_t pid = 0; pid < config.procs.size(); ++pid) {
        if (inputs[pid] == v && !config.procs[pid].aborted()) {
          witnessed = true;
        }
      }
      if (!witnessed) {
        return {"validity", "decided " + value_to_string(v) +
                                " has no non-aborting proposer"};
      }
    }
    for (std::size_t pid = 0; pid < config.procs.size(); ++pid) {
      if (config.procs[pid].aborted() &&
          static_cast<int>(pid) != distinguished_pid) {
        return {"only-p-aborts", "p" + std::to_string(pid) + " aborted"};
      }
    }
    return {"", ""};
  };
}

Status validate_fuzz_options(const FuzzOptions& options) {
  if (options.coverage_guided) return Status::ok();
  if (!options.checkpoint_path.empty()) {
    return invalid_argument(
        "fuzz: checkpoint_path is set but the blind engine cannot checkpoint "
        "(its claim order is thread-scheduling dependent); pass "
        "coverage_guided=true or drop checkpoint_path");
  }
  if (options.resume != nullptr) {
    return invalid_argument(
        "fuzz: resume is set but the blind engine cannot resume a "
        "checkpoint; pass coverage_guided=true or drop resume");
  }
  if (options.stop_after_runs != 0) {
    return invalid_argument(
        "fuzz: stop_after_runs is set but the blind engine has no "
        "deterministic run boundary to stop at; pass coverage_guided=true "
        "or drop stop_after_runs");
  }
  return Status::ok();
}

FuzzReport fuzz_safety(std::shared_ptr<const sim::Protocol> protocol,
                       const SafetyPredicate& judge,
                       const FuzzOptions& options) {
  LBSA_CHECK(protocol != nullptr);
  LBSA_CHECK(options.max_violations >= 1);
  LBSA_CHECK_MSG(options.coverage_guided || (options.checkpoint_path.empty() &&
                                             options.resume == nullptr),
                 "fuzz checkpoint/resume requires the coverage engine");
  if (options.resume != nullptr) {
    // Callers surface mismatches gracefully by running validate_fuzz_resume
    // themselves first (the CLIs do); reaching here with a bad checkpoint is
    // a contract violation.
    const Status valid = validate_fuzz_resume(*protocol, options,
                                              *options.resume);
    LBSA_CHECK_MSG(valid.is_ok(), valid.to_string().c_str());
  }
  LBSA_OBS_SPAN(span, "fuzz.run", obs::kCatTask, /*lane=*/0);
  FuzzReport report =
      options.coverage_guided
          ? fuzz_coverage(protocol, judge, options,
                          fuzz_fingerprint(*protocol, options))
          : fuzz_blind(protocol, judge, options);
  span.arg("runs", static_cast<std::int64_t>(report.runs_executed));
  span.arg("violations", static_cast<std::int64_t>(report.violations.size()));
  // Report aggregates are deterministic by construction (blind reports are
  // byte-identical across thread counts; the coverage engine is serial), so
  // the stable counters mirror the report, not the live execution tallies.
  LBSA_OBS_COUNTER_ADD("fuzz.runs_executed", report.runs_executed);
  LBSA_OBS_COUNTER_ADD("fuzz.runs_terminated", report.runs_terminated);
  LBSA_OBS_COUNTER_ADD("fuzz.interesting_runs", report.interesting_runs);
  LBSA_OBS_COUNTER_ADD("fuzz.mutated_runs", report.mutated_runs);
  LBSA_OBS_COUNTER_ADD("fuzz.shrink_replays", report.shrink_replays);
  LBSA_OBS_COUNTER_ADD("fuzz.violations", report.violations.size());
  LBSA_OBS_GAUGE_MAX("fuzz.distinct_fingerprints",
                     report.distinct_fingerprints);
  return report;
}

FuzzReport fuzz_k_agreement(std::shared_ptr<const sim::Protocol> protocol,
                            int k, const std::vector<Value>& inputs,
                            const FuzzOptions& options) {
  return fuzz_safety(std::move(protocol), k_agreement_safety(k, inputs),
                     options);
}

FuzzReport fuzz_dac(std::shared_ptr<const sim::Protocol> protocol,
                    int distinguished_pid, const std::vector<Value>& inputs,
                    const FuzzOptions& options) {
  return fuzz_safety(std::move(protocol),
                     dac_safety(distinguished_pid, inputs), options);
}

}  // namespace lbsa::modelcheck
