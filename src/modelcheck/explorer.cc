#include "modelcheck/explorer.h"

#include <algorithm>
#include <atomic>
#include <barrier>
#include <deque>
#include <thread>
#include <utility>

#include "base/check.h"
#include "base/hashing.h"
#include "modelcheck/interning.h"
#include "obs/obs.h"

namespace lbsa::modelcheck {
namespace {

struct KeyHash {
  std::size_t operator()(const std::vector<std::int64_t>& key) const {
    return static_cast<std::size_t>(hash_words(key));
  }
};

int resolve_threads(const ExploreOptions& options) {
  if (options.threads > 0) return options.threads;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

// Partial-order reduction's ample-set selector: the smallest enabled
// process whose next action is a deterministic, purely-local step (decide /
// abort — touches no shared object) and, when a path flag is folded along
// edges, leaves the flag unchanged (the visibility proviso: a flag-changing
// step may not be prioritized, or flag-distinguished histories would be
// lost). Returns -1 when no such process exists and the node must be fully
// expanded. Pure function of (config, flag), so both engines agree and
// reduced graphs stay deterministic. The cycle proviso is structural: an
// ample step strictly shrinks the enabled set, so no cycle consists of
// ample-reduced nodes.
int select_ample_pid(const sim::Protocol& protocol, const sim::Config& config,
                     std::int64_t flag, const Explorer::FlagFn& flag_fn) {
  const int n = static_cast<int>(config.procs.size());
  for (int pid = 0; pid < n; ++pid) {
    if (!config.enabled(pid)) continue;
    const sim::Action action =
        protocol.next_action(pid, config.procs[static_cast<std::size_t>(pid)]);
    if (action.kind == sim::Action::Kind::kInvoke) continue;
    if (flag_fn) {
      // Probe with the exact Step enumerate_successors() would emit for
      // this local action.
      const sim::Step probe{pid, action, kNil, 0};
      if (flag_fn(flag, probe) != flag) continue;
    }
    return pid;
  }
  return -1;
}

// End-of-run level statistics, derived from the canonical graph so both
// engines report byte-identical values: one frontier-size observation per
// BFS level, the level count, and the maximum depth.
void record_graph_metrics(const ConfigGraph& graph) {
  if (!obs::metrics_enabled()) return;
  std::vector<std::uint64_t> level_sizes;
  for (const Node& node : graph.nodes()) {
    if (node.depth >= level_sizes.size()) level_sizes.resize(node.depth + 1, 0);
    ++level_sizes[node.depth];
  }
  for (std::uint64_t size : level_sizes) {
    LBSA_OBS_HISTOGRAM_OBSERVE("explore.frontier_size", size);
  }
  LBSA_OBS_COUNTER_ADD("explore.levels", level_sizes.size());
  if (!level_sizes.empty()) {
    LBSA_OBS_GAUGE_MAX("explore.max_depth", level_sizes.size() - 1);
  }
}

// ---------------------------------------------------------------------------
// Serial reference engine. This is the semantic definition of the canonical
// graph: node ids in BFS discovery order (frontier in id order; within a
// node, pids ascending, then outcome order), parents_ from the discovering
// edge, depths from level-synchronous discovery. The parallel engine below
// must reproduce its output bit for bit on complete explorations.
// ---------------------------------------------------------------------------
}  // namespace

StatusOr<ConfigGraph> Explorer::explore_serial(const ExploreOptions& options,
                                               const FlagFn& flag_fn,
                                               std::int64_t initial_flag,
                                               const sim::Canonicalizer* sym,
                                               bool por) const {
  const sim::Protocol& protocol = *protocol_;
  ConfigGraph graph;
  std::unordered_map<std::vector<std::int64_t>, std::uint32_t, KeyHash> index;

  // Reused scratch: the encoded key only lands in the map on insertion.
  std::vector<std::int64_t> key;
  std::vector<std::uint8_t> perm;
  auto intern = [&](sim::Config config, std::int64_t flag,
                    std::uint32_t parent, const sim::Step& step,
                    std::uint32_t depth) -> std::pair<std::uint32_t, bool> {
    if (sym != nullptr) {
      sym->canonical_encode_into(config, &key, &perm);
      if (!perm.empty()) LBSA_OBS_COUNTER_ADD("explore.sym.renamed", 1);
    } else {
      config.encode_into(&key);
    }
    key.push_back(flag);
    auto [it, inserted] =
        index.try_emplace(key, static_cast<std::uint32_t>(graph.nodes_.size()));
    if (inserted) {
      LBSA_OBS_COUNTER_ADD("explore.nodes", 1);
      if (sym != nullptr && !perm.empty()) {
        const std::vector<int> as_int(perm.begin(), perm.end());
        sim::apply_pid_permutation(protocol, as_int, &config);
      }
      graph.nodes_.push_back(Node{std::move(config), flag, depth});
      graph.edges_.emplace_back();
      graph.parents_.emplace_back(parent, step);
      if (sym != nullptr) graph.discovery_perms_.push_back(perm);
    }
    return {it->second, inserted};
  };

  sim::Config init = sim::initial_config(protocol);
  intern(std::move(init), initial_flag, 0, sim::Step{}, 0);

  std::deque<std::uint32_t> frontier;
  frontier.push_back(0);

  // One "explore.level" phase event per BFS level. The frontier is a FIFO,
  // so popped depths are non-decreasing and a depth change marks a level
  // boundary — matching the parallel engine's one-span-per-level exactly.
  bool level_open = false;
  std::uint64_t level_start_us = 0;
  std::uint32_t span_depth = 0;
  std::uint64_t span_nodes = 0;
  auto close_level_span = [&] {
    if (!level_open) return;
    level_open = false;
    obs::TraceEvent event;
    event.name = "explore.level";
    event.cat = obs::kCatPhase;
    event.lane = 0;
    event.ts_us = level_start_us;
    const std::uint64_t now = obs::trace_now_us();
    event.dur_us = now >= level_start_us ? now - level_start_us : 0;
    event.args.emplace_back("level", span_depth);
    event.args.emplace_back("nodes", static_cast<std::int64_t>(span_nodes));
    obs::Tracer::global().record(std::move(event));
  };
  auto open_level_span = [&](std::uint32_t d) {
    span_depth = d;
    span_nodes = 0;
    if (!obs::tracing_enabled()) return;
    level_open = true;
    level_start_us = obs::trace_now_us();
  };
  open_level_span(0);

  std::vector<sim::Successor> successors;
  while (!frontier.empty()) {
    const std::uint32_t id = frontier.front();
    frontier.pop_front();
    // Copy what we need: intern() may reallocate nodes_.
    const sim::Config config = graph.nodes_[id].config;
    const std::int64_t flag = graph.nodes_[id].flag;
    const std::uint32_t depth = graph.nodes_[id].depth;

    if (depth != span_depth) {
      close_level_span();
      open_level_span(depth);
    }
    ++span_nodes;

    const int ample =
        por ? select_ample_pid(protocol, config, flag, flag_fn) : -1;
    if (ample >= 0) {
      LBSA_OBS_COUNTER_ADD("explore.por.skips", config.enabled_count() - 1);
    }
    const int n = static_cast<int>(config.procs.size());
    for (int pid = 0; pid < n; ++pid) {
      if (!config.enabled(pid)) continue;
      if (ample >= 0 && pid != ample) continue;
      successors.clear();
      sim::enumerate_successors(protocol, config, pid, &successors);
      for (sim::Successor& succ : successors) {
        const std::int64_t next_flag =
            flag_fn ? flag_fn(flag, succ.step) : flag;
        auto [to, inserted] = intern(std::move(succ.config), next_flag, id,
                                     succ.step, depth + 1);
        graph.edges_[id].push_back(
            Edge{to, pid, succ.step.action.kind});
        ++graph.transition_count_;
        LBSA_OBS_COUNTER_ADD("explore.transitions", 1);
        if (inserted) {
          if (graph.nodes_.size() > options.max_nodes) {
            if (!options.allow_truncation) {
              return resource_exhausted(
                  "explore: node budget exceeded (" +
                  std::to_string(options.max_nodes) + ")");
            }
            // Truncation invariant: the over-budget node was already pushed
            // into nodes_/edges_/parents_ by intern(), so the edge we just
            // emitted has a valid target and path_to(to) replays — the node
            // is KEPT but (by skipping the frontier push) never expanded.
            graph.truncated_ = true;
            continue;
          }
          frontier.push_back(to);
        }
      }
    }
  }
  close_level_span();
  LBSA_CHECK(graph.nodes_.size() == graph.edges_.size() &&
             graph.nodes_.size() == graph.parents_.size());
  record_graph_metrics(graph);
  return graph;
}

// ---------------------------------------------------------------------------
// Parallel engine: level-synchronous BFS over a work pool.
//
// Determinism recipe (complete graphs are bit-identical to explore_serial):
//   1. Levels are processed with a barrier in between, so a node's depth is
//      exactly its BFS distance no matter which thread discovers it.
//   2. Each frontier node is expanded by exactly one worker, which emits its
//      RawEdge list in the canonical within-node order (pids ascending,
//      outcomes in enumeration order). Provisional ids from the sharded
//      intern table are schedule-dependent, but the edge *lists* are not.
//   3. A final single-threaded renumbering pass replays the canonical BFS
//      over the provisional graph: walking nodes in canonical id order and
//      each edge list in order, first-touch assigns canonical ids — which
//      reproduces the serial discovery order, parents and all.
// ---------------------------------------------------------------------------

namespace {

// Payload stored per interned (config, flag) node.
struct NodePayload {
  sim::Config config;
  std::int64_t flag = 0;
  std::uint32_t depth = 0;
};

// An emitted transition, pre-renumbering: target is a provisional id and the
// full Step is kept so the renumbering pass can rebuild parents_. Under
// symmetry reduction, perm records the canonicalizing permutation of this
// edge's successor (empty = identity); the renumbering pass installs the
// first-touch edge's perm as the node's discovery perm, which keeps
// discovery_perms_ aligned with the canonical parents_ no matter which
// worker interned the node first.
struct RawEdge {
  std::uint32_t to = 0;
  sim::Step step;
  std::vector<std::uint8_t> perm;
};

// A frontier entry. Carries its own copy of the configuration so workers
// never read the intern table's payload store while other workers insert
// into it (payload reads happen only after full quiescence).
struct WorkItem {
  std::uint32_t id = 0;  // provisional id
  sim::Config config;
  std::int64_t flag = 0;
};

struct WorkerOutput {
  std::vector<WorkItem> next;  // discoveries for the next level
  std::vector<std::pair<std::uint32_t, std::vector<RawEdge>>> edges;
  std::uint64_t transitions = 0;
};

constexpr std::uint32_t kUnassigned = 0xffffffffu;
constexpr std::size_t kChunk = 16;  // frontier items claimed per steal

}  // namespace

StatusOr<ConfigGraph> Explorer::explore_parallel(
    const ExploreOptions& options, int threads, const FlagFn& flag_fn,
    std::int64_t initial_flag, const sim::Canonicalizer* sym,
    bool por) const {
  const sim::Protocol& protocol = *protocol_;
  ShardedInternTable<NodePayload> table;
  std::atomic<bool> exhausted{false};  // budget hit, truncation not allowed
  std::atomic<bool> truncated{false};

  sim::Config init = sim::initial_config(protocol);
  std::vector<std::uint8_t> root_perm;
  if (sym != nullptr) {
    sym->canonicalize(&init, &root_perm);
    if (!root_perm.empty()) LBSA_OBS_COUNTER_ADD("explore.sym.renamed", 1);
  }
  std::uint32_t root_id = 0;
  {
    std::vector<std::int64_t> root_key;
    init.encode_into(&root_key);
    root_key.push_back(initial_flag);
    sim::Config root_copy = init;
    root_id = table.intern(root_key, [&] {
                     return NodePayload{std::move(root_copy), initial_flag, 0};
                   }).id;
    LBSA_OBS_COUNTER_ADD("explore.nodes", 1);
  }

  if (obs::tracing_enabled()) {
    obs::Tracer::global().set_lane_name(0, "coordinator");
    for (int t = 0; t < threads; ++t) {
      obs::Tracer::global().set_lane_name(t + 1,
                                          "worker " + std::to_string(t));
    }
  }

  std::vector<WorkItem> frontier;
  frontier.push_back(WorkItem{root_id, std::move(init), initial_flag});

  std::vector<WorkerOutput> outputs(static_cast<std::size_t>(threads));
  std::atomic<std::size_t> cursor{0};
  std::uint32_t depth = 0;  // depth of the level currently expanding
  std::atomic<bool> done{false};

  std::barrier<> level_start(threads + 1);
  std::barrier<> level_end(threads + 1);

  auto worker = [&](int widx) {
    // Thread-local scratch, reused across every expansion.
    std::vector<sim::Successor> successors;
    std::vector<std::int64_t> key;
    std::vector<std::uint8_t> perm;
    WorkerOutput& out = outputs[static_cast<std::size_t>(widx)];
    while (true) {
      level_start.arrive_and_wait();
      if (done.load(std::memory_order_acquire)) return;
      // Per-worker-thread lane; "worker" events scale with the pool size and
      // are excluded from trace-count determinism comparisons.
      obs::Span worker_span("explore.worker", obs::kCatWorker, widx + 1);
      std::uint64_t expanded = 0;
      while (!exhausted.load(std::memory_order_relaxed)) {
        const std::size_t begin =
            cursor.fetch_add(kChunk, std::memory_order_relaxed);
        if (begin >= frontier.size()) break;
        const std::size_t end = std::min(frontier.size(), begin + kChunk);
        for (std::size_t i = begin;
             i < end && !exhausted.load(std::memory_order_relaxed); ++i) {
          ++expanded;
          WorkItem& item = frontier[i];
          std::vector<RawEdge> raw;
          const int ample =
              por ? select_ample_pid(protocol, item.config, item.flag, flag_fn)
                  : -1;
          if (ample >= 0) {
            LBSA_OBS_COUNTER_ADD("explore.por.skips",
                                 item.config.enabled_count() - 1);
          }
          const int n = static_cast<int>(item.config.procs.size());
          for (int pid = 0; pid < n; ++pid) {
            if (!item.config.enabled(pid)) continue;
            if (ample >= 0 && pid != ample) continue;
            successors.clear();
            sim::enumerate_successors(protocol, item.config, pid,
                                      &successors);
            for (sim::Successor& succ : successors) {
              const std::int64_t next_flag =
                  flag_fn ? flag_fn(item.flag, succ.step) : item.flag;
              if (sym != nullptr) {
                sym->canonical_encode_into(succ.config, &key, &perm);
                if (!perm.empty()) {
                  LBSA_OBS_COUNTER_ADD("explore.sym.renamed", 1);
                  // Store (and later expand) the representative, never the
                  // raw successor: expansion must be a pure function of the
                  // interned configuration.
                  const std::vector<int> as_int(perm.begin(), perm.end());
                  sim::apply_pid_permutation(protocol, as_int, &succ.config);
                }
              } else {
                succ.config.encode_into(&key);
              }
              key.push_back(next_flag);
              const auto res = table.intern(key, [&] {
                return NodePayload{succ.config, next_flag, depth + 1};
              });
              raw.push_back(RawEdge{res.id, succ.step, perm});
              ++out.transitions;
              LBSA_OBS_COUNTER_ADD("explore.transitions", 1);
              if (!res.inserted) continue;
              LBSA_OBS_COUNTER_ADD("explore.nodes", 1);
              if (table.size() > options.max_nodes) {
                if (!options.allow_truncation) {
                  exhausted.store(true, std::memory_order_relaxed);
                  break;
                }
                // Keep the node (its edge is already recorded) but never
                // expand it; see the truncation soundness note in the
                // ExploreOptions docs.
                truncated.store(true, std::memory_order_relaxed);
                continue;
              }
              out.next.push_back(
                  WorkItem{res.id, std::move(succ.config), next_flag});
            }
          }
          out.edges.emplace_back(item.id, std::move(raw));
        }
      }
      worker_span.arg("expanded", static_cast<std::int64_t>(expanded));
      level_end.arrive_and_wait();
    }
  };

  std::vector<std::thread> pool;
  pool.reserve(static_cast<std::size_t>(threads));
  for (int t = 0; t < threads; ++t) pool.emplace_back(worker, t);

  std::vector<std::pair<std::uint32_t, std::vector<RawEdge>>> all_edges;
  std::uint64_t transition_count = 0;
  while (!frontier.empty() && !exhausted.load(std::memory_order_relaxed)) {
    // Mirrors the serial engine's one "explore.level" phase span per level.
    obs::Span level_span("explore.level", obs::kCatPhase, /*lane=*/0);
    level_span.arg("level", depth);
    level_span.arg("nodes", static_cast<std::int64_t>(frontier.size()));
    cursor.store(0, std::memory_order_relaxed);
    level_start.arrive_and_wait();
    // Workers expand this level...
    level_end.arrive_and_wait();
    std::vector<WorkItem> next;
    for (WorkerOutput& out : outputs) {
      // Cross-worker concatenation order is arbitrary; the renumbering
      // pass below is insensitive to it.
      std::move(out.next.begin(), out.next.end(), std::back_inserter(next));
      out.next.clear();
      std::move(out.edges.begin(), out.edges.end(),
                std::back_inserter(all_edges));
      out.edges.clear();
      transition_count += out.transitions;
      out.transitions = 0;
    }
    frontier = std::move(next);
    ++depth;
  }
  done.store(true, std::memory_order_release);
  level_start.arrive_and_wait();
  for (std::thread& t : pool) t.join();

  // Intern-table occupancy / probe lengths (quiescent). Probe totals depend
  // on insertion interleaving and the serial engine has no intern table at
  // all, so every explore.intern.* metric is volatile by construction.
  if (obs::metrics_enabled()) {
    const auto table_stats = table.stats();
    LBSA_OBS_COUNTER_ADD_V("explore.intern.probes", table_stats.probes);
    LBSA_OBS_GAUGE_SET_V("explore.intern.entries",
                         static_cast<std::int64_t>(table_stats.entries));
    LBSA_OBS_GAUGE_SET_V("explore.intern.slots",
                         static_cast<std::int64_t>(table_stats.slots));
    LBSA_OBS_GAUGE_SET_V(
        "explore.intern.max_shard_entries",
        static_cast<std::int64_t>(table_stats.max_shard_entries));
    LBSA_OBS_HISTOGRAM_OBSERVE_V("explore.intern.probe_length",
                                 table_stats.entries == 0
                                     ? 0
                                     : table_stats.probes / table_stats.entries);
  }

  if (exhausted.load()) {
    return resource_exhausted("explore: node budget exceeded (" +
                              std::to_string(options.max_nodes) + ")");
  }

  // --- Canonical renumbering (single-threaded, at quiescence). ---
  const std::uint32_t bound = table.id_bound();
  std::vector<std::vector<RawEdge>> raw(bound);
  for (auto& [id, edges] : all_edges) raw[id] = std::move(edges);
  all_edges.clear();

  ConfigGraph graph;
  graph.truncated_ = truncated.load();
  graph.transition_count_ = transition_count;
  const std::size_t total = static_cast<std::size_t>(table.size());
  graph.nodes_.reserve(total);
  graph.edges_.reserve(total);
  graph.parents_.reserve(total);

  std::vector<std::uint32_t> canon(bound, kUnassigned);
  std::vector<std::uint32_t> order;  // canonical BFS queue (provisional ids)
  order.reserve(total);
  {
    NodePayload& p = table.payload(root_id);
    canon[root_id] = 0;
    order.push_back(root_id);
    graph.nodes_.push_back(Node{std::move(p.config), p.flag, 0});
    graph.edges_.emplace_back();
    graph.parents_.emplace_back(0, sim::Step{});
    if (sym != nullptr) graph.discovery_perms_.push_back(std::move(root_perm));
  }
  for (std::size_t i = 0; i < order.size(); ++i) {
    const std::uint32_t u = order[i];
    const std::uint32_t cu = static_cast<std::uint32_t>(i);
    for (RawEdge& e : raw[u]) {
      if (canon[e.to] == kUnassigned) {
        canon[e.to] = static_cast<std::uint32_t>(graph.nodes_.size());
        NodePayload& p = table.payload(e.to);
        // Level-synchronous discovery makes stored depths exact; the
        // canonical parent is one level up by construction.
        LBSA_CHECK(p.depth == graph.nodes_[cu].depth + 1);
        graph.nodes_.push_back(Node{std::move(p.config), p.flag, p.depth});
        graph.edges_.emplace_back();
        graph.parents_.emplace_back(cu, e.step);
        // The canonical discovery perm is the first-touch edge's perm (the
        // racing worker's perm may belong to a different parent edge).
        if (sym != nullptr) graph.discovery_perms_.push_back(std::move(e.perm));
        order.push_back(e.to);
      }
      graph.edges_[cu].push_back(
          Edge{canon[e.to], e.step.pid, e.step.action.kind});
    }
  }
  // Every interned node has an in-edge from an expanded node (or is the
  // root), so the canonical walk must have covered the whole table.
  LBSA_CHECK(graph.nodes_.size() == total);
  LBSA_CHECK(graph.nodes_.size() == graph.edges_.size() &&
             graph.nodes_.size() == graph.parents_.size());
  record_graph_metrics(graph);
  return graph;
}

std::vector<sim::Step> ConfigGraph::path_to(std::uint32_t id) const {
  if (canonicalizer_ == nullptr) {
    std::vector<sim::Step> steps;
    std::uint32_t cur = id;
    while (cur != root()) {
      const auto& [parent, step] = parents_[cur];
      steps.push_back(step);
      cur = parent;
    }
    std::reverse(steps.begin(), steps.end());
    return steps;
  }

  // Symmetry-reduced graph: every recorded step acted in its parent's
  // *representative* space, so the raw parent chain is generally not an
  // execution of the protocol. Lift it: maintain σ, the renaming that maps
  // the concrete run being rebuilt onto the stored representative of the
  // current node (σ starts as the root's canonicalizing perm and composes
  // each node's discovery perm on the way down); a representative step by
  // pid r lifts to a concrete step by σ⁻¹(r) with the same outcome choice
  // (renaming maps outcome lists elementwise in order — see sim/symmetry.h).
  std::vector<std::uint32_t> chain;  // nodes after the root, in path order
  for (std::uint32_t cur = id; cur != root(); cur = parents_[cur].first) {
    chain.push_back(cur);
  }
  std::reverse(chain.begin(), chain.end());

  const sim::Protocol& protocol = *lift_protocol_;
  const int n = protocol.process_count();
  std::vector<int> sigma(static_cast<std::size_t>(n));
  for (int p = 0; p < n; ++p) sigma[static_cast<std::size_t>(p)] = p;
  auto compose = [&](const std::vector<std::uint8_t>& pi) {
    if (pi.empty()) return;  // identity
    for (int p = 0; p < n; ++p) {
      sigma[static_cast<std::size_t>(p)] = static_cast<int>(
          pi[static_cast<std::size_t>(sigma[static_cast<std::size_t>(p)])]);
    }
  };
  compose(discovery_perms_[root()]);

  sim::Config concrete = sim::initial_config(protocol);
  std::vector<sim::Step> steps;
  steps.reserve(chain.size());
  for (std::uint32_t v : chain) {
    const sim::Step& rep_step = parents_[v].second;
    int concrete_pid = -1;
    for (int p = 0; p < n; ++p) {
      if (sigma[static_cast<std::size_t>(p)] == rep_step.pid) {
        concrete_pid = p;
        break;
      }
    }
    LBSA_CHECK(concrete_pid >= 0);
    steps.push_back(sim::apply_step(protocol, &concrete, concrete_pid,
                                    rep_step.outcome_choice));
    compose(discovery_perms_[v]);
  }
  // Certify the lift: renaming the concrete endpoint by σ must reproduce
  // the stored representative bit for bit.
  sim::Config renamed = concrete;
  sim::apply_pid_permutation(protocol, sigma, &renamed);
  LBSA_CHECK_MSG(renamed == nodes_[static_cast<std::size_t>(id)].config,
                 "symmetry lift failed to land on the representative");
  return steps;
}

std::uint64_t ConfigGraph::full_node_estimate() const {
  if (canonicalizer_ == nullptr) {
    return static_cast<std::uint64_t>(nodes_.size());
  }
  std::uint64_t total = 0;
  for (const Node& node : nodes_) {
    total += canonicalizer_->orbit_size(node.config);
  }
  return total;
}

const char* reduction_name(Reduction reduction) {
  switch (reduction) {
    case Reduction::kNone:
      return "none";
    case Reduction::kSymmetry:
      return "symmetry";
    case Reduction::kPor:
      return "por";
    case Reduction::kBoth:
      return "both";
  }
  return "none";
}

StatusOr<Reduction> parse_reduction(const std::string& name) {
  if (name == "none") return Reduction::kNone;
  if (name == "symmetry") return Reduction::kSymmetry;
  if (name == "por") return Reduction::kPor;
  if (name == "both") return Reduction::kBoth;
  return invalid_argument("unknown reduction '" + name +
                          "' (known: none, symmetry, por, both)");
}

StatusOr<ConfigGraph> Explorer::explore(const ExploreOptions& options,
                                        FlagFn flag_fn,
                                        std::int64_t initial_flag) const {
  const int threads = resolve_threads(options);
  const bool parallel =
      options.engine == ExploreEngine::kParallel ||
      (options.engine == ExploreEngine::kAuto && threads > 1);

  const bool want_sym = options.reduction == Reduction::kSymmetry ||
                        options.reduction == Reduction::kBoth;
  const bool por = options.reduction == Reduction::kPor ||
                   options.reduction == Reduction::kBoth;
  std::shared_ptr<const sim::Canonicalizer> sym;
  if (want_sym) {
    sim::SymmetrySpec spec = protocol_->symmetry();
    if (!spec.trivial()) {
      if (flag_fn && !options.flag_fn_symmetric) {
        return invalid_argument(
            "explore: flag function combined with symmetry reduction on a "
            "protocol with a non-trivial symmetry group; declare invariance "
            "via ExploreOptions::flag_fn_symmetric or drop to "
            "reduction=none/por");
      }
      sym = std::make_shared<const sim::Canonicalizer>(protocol_,
                                                       std::move(spec));
      LBSA_OBS_GAUGE_MAX("explore.sym.group_size",
                         static_cast<std::int64_t>(sym->group_size()));
    }
  }

  LBSA_OBS_COUNTER_ADD("explore.runs", 1);
  LBSA_OBS_SPAN(run_span, "explore.run", obs::kCatTask, /*lane=*/0);
  StatusOr<ConfigGraph> result =
      parallel ? explore_parallel(options, threads, flag_fn, initial_flag,
                                  sym.get(), por)
               : explore_serial(options, flag_fn, initial_flag, sym.get(), por);
  if (result.is_ok()) {
    ConfigGraph& graph = result.value();
    graph.reduction_ = options.reduction;
    graph.canonicalizer_ = std::move(sym);
    graph.lift_protocol_ = protocol_;
  }
  return result;
}

}  // namespace lbsa::modelcheck
