#include "modelcheck/explorer.h"

#include <algorithm>
#include <deque>

#include "base/check.h"
#include "base/hashing.h"

namespace lbsa::modelcheck {
namespace {

struct KeyHash {
  std::size_t operator()(const std::vector<std::int64_t>& key) const {
    return static_cast<std::size_t>(hash_words(key));
  }
};

}  // namespace

std::vector<sim::Step> ConfigGraph::path_to(std::uint32_t id) const {
  std::vector<sim::Step> steps;
  std::uint32_t cur = id;
  while (cur != root()) {
    const auto& [parent, step] = parents_[cur];
    steps.push_back(step);
    cur = parent;
  }
  std::reverse(steps.begin(), steps.end());
  return steps;
}

StatusOr<ConfigGraph> Explorer::explore(const ExploreOptions& options,
                                        FlagFn flag_fn,
                                        std::int64_t initial_flag) const {
  ConfigGraph graph;
  std::unordered_map<std::vector<std::int64_t>, std::uint32_t, KeyHash> index;

  auto key_of = [](const sim::Config& config, std::int64_t flag) {
    std::vector<std::int64_t> key = config.encode();
    key.push_back(flag);
    return key;
  };

  auto intern = [&](sim::Config config, std::int64_t flag,
                    std::uint32_t parent, const sim::Step& step,
                    std::uint32_t depth) -> std::pair<std::uint32_t, bool> {
    auto key = key_of(config, flag);
    auto [it, inserted] =
        index.try_emplace(std::move(key),
                          static_cast<std::uint32_t>(graph.nodes_.size()));
    if (inserted) {
      graph.nodes_.push_back(Node{std::move(config), flag, depth});
      graph.edges_.emplace_back();
      graph.parents_.emplace_back(parent, step);
    }
    return {it->second, inserted};
  };

  sim::Config init = sim::initial_config(*protocol_);
  intern(std::move(init), initial_flag, 0, sim::Step{}, 0);

  std::deque<std::uint32_t> frontier;
  frontier.push_back(0);

  std::vector<sim::Successor> successors;
  while (!frontier.empty()) {
    const std::uint32_t id = frontier.front();
    frontier.pop_front();
    // Copy what we need: intern() may reallocate nodes_.
    const sim::Config config = graph.nodes_[id].config;
    const std::int64_t flag = graph.nodes_[id].flag;
    const std::uint32_t depth = graph.nodes_[id].depth;

    const int n = static_cast<int>(config.procs.size());
    for (int pid = 0; pid < n; ++pid) {
      if (!config.enabled(pid)) continue;
      successors.clear();
      sim::enumerate_successors(*protocol_, config, pid, &successors);
      for (sim::Successor& succ : successors) {
        const std::int64_t next_flag =
            flag_fn ? flag_fn(flag, succ.step) : flag;
        auto [to, inserted] = intern(std::move(succ.config), next_flag, id,
                                     succ.step, depth + 1);
        graph.edges_[id].push_back(
            Edge{to, pid, succ.step.action.kind});
        ++graph.transition_count_;
        if (inserted) {
          if (graph.nodes_.size() > options.max_nodes) {
            if (!options.allow_truncation) {
              return resource_exhausted(
                  "explore: node budget exceeded (" +
                  std::to_string(options.max_nodes) + ")");
            }
            // Keep the node (edges stay consistent) but stop expanding it.
            graph.truncated_ = true;
            continue;
          }
          frontier.push_back(to);
        }
      }
    }
  }
  return graph;
}

}  // namespace lbsa::modelcheck
