#include "modelcheck/explorer.h"

#include <algorithm>
#include <array>
#include <atomic>
#include <barrier>
#include <deque>
#include <limits>
#include <mutex>
#include <span>
#include <string>
#include <thread>
#include <utility>

#include "base/arena.h"
#include "base/check.h"
#include "base/hashing.h"
#include "modelcheck/batch_intern.h"
#include "modelcheck/checkpoint.h"
#include "obs/heartbeat.h"
#include "obs/obs.h"

namespace lbsa::modelcheck {
namespace {

struct KeyHash {
  std::size_t operator()(const std::vector<std::int64_t>& key) const {
    return static_cast<std::size_t>(hash_words(key));
  }
};

int resolve_threads(const ExploreOptions& options) {
  if (options.threads > 0) return options.threads;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

// Partial-order reduction's ample-set selector: the smallest enabled
// process whose next action is a deterministic, purely-local step (decide /
// abort — touches no shared object) and, when a path flag is folded along
// edges, leaves the flag unchanged (the visibility proviso: a flag-changing
// step may not be prioritized, or flag-distinguished histories would be
// lost). Returns -1 when no such process exists and the node must be fully
// expanded. Pure function of (config, flag), so all engines agree and
// reduced graphs stay deterministic. The cycle proviso is structural: an
// ample step strictly shrinks the enabled set, so no cycle consists of
// ample-reduced nodes.
int select_ample_pid(const sim::Protocol& protocol, const sim::Config& config,
                     std::int64_t flag, const Explorer::FlagFn& flag_fn) {
  const int n = static_cast<int>(config.procs.size());
  for (int pid = 0; pid < n; ++pid) {
    if (!config.enabled(pid)) continue;
    const sim::Action action =
        protocol.next_action(pid, config.procs[static_cast<std::size_t>(pid)]);
    if (action.kind == sim::Action::Kind::kInvoke) continue;
    if (flag_fn) {
      // Probe with the exact Step enumerate_successors() would emit for
      // this local action.
      const sim::Step probe{pid, action, kNil, 0};
      if (flag_fn(flag, probe) != flag) continue;
    }
    return pid;
  }
  return -1;
}

// End-of-run level statistics, derived from the canonical graph so every
// engine reports byte-identical values: one frontier-size observation per
// BFS level, the level count, and the maximum depth.
void record_graph_metrics(const ConfigGraph& graph) {
  if (!obs::metrics_enabled()) return;
  std::vector<std::uint64_t> level_sizes;
  for (const Node& node : graph.nodes()) {
    if (node.depth >= level_sizes.size()) level_sizes.resize(node.depth + 1, 0);
    ++level_sizes[node.depth];
  }
  for (std::uint64_t size : level_sizes) {
    LBSA_OBS_HISTOGRAM_OBSERVE("explore.frontier_size", size);
  }
  LBSA_OBS_COUNTER_ADD("explore.levels", level_sizes.size());
  if (!level_sizes.empty()) {
    LBSA_OBS_GAUGE_MAX("explore.max_depth", level_sizes.size() - 1);
  }
}

// Live telemetry (obs/heartbeat.h). Progress counters are process-cumulative
// — hierarchy sweeps accumulate across cells, and on resume the CLI seeds
// the checkpoint's totals before calling explore — so each engine captures
// the entry values and publishes base + its session's delta through
// Progress::raise (monotone even when work-stealing workers race stale
// absolutes). Gated on heartbeat_enabled(): an un-observed run pays one
// relaxed load at each quiescence point.
struct LiveProgress {
  bool on = false;
  std::uint64_t nodes_base = 0;
  std::uint64_t transitions_base = 0;

  static LiveProgress capture() {
    LiveProgress live;
    live.on = obs::heartbeat_enabled();
    if (live.on) {
      obs::Progress& p = obs::Progress::global();
      live.nodes_base = p.nodes_total.load(std::memory_order_relaxed);
      live.transitions_base =
          p.transitions_total.load(std::memory_order_relaxed);
    }
    return live;
  }

  // `session_nodes`/`session_transitions` count work done this session only
  // (the resumed prefix is already in the base via the CLI's seeding).
  void publish(std::uint64_t session_nodes, std::uint64_t session_transitions,
               std::uint64_t levels, std::uint64_t frontier) const {
    if (!on) return;
    obs::Progress& p = obs::Progress::global();
    obs::Progress::raise(p.nodes_total, nodes_base + session_nodes);
    obs::Progress::raise(p.transitions_total,
                         transitions_base + session_transitions);
    p.levels_completed.store(levels, std::memory_order_relaxed);
    p.frontier_size.store(frontier, std::memory_order_relaxed);
  }
};

// Frontier items claimed per grab/steal in the parallel engines. Sized so
// a chunk's successors (a handful per item) form per-shard intern batches
// big enough to amortize the shared-lock round per shard across several
// keys. Doubles as the mid-level lifecycle polling cadence in all three
// engines: every kChunk expansions each engine re-checks cancel/deadline,
// so one huge level (the dac5/dac6 tails) cannot blow past a request
// deadline by more than a bounded amount of work.
constexpr std::size_t kChunk = 64;

// Why a run stopped at a level boundary, if it should.
enum class StopReason { kNone, kCancelled, kDeadline, kMaxLevels };

StopReason stop_reason(const ExploreOptions& options,
                       std::uint32_t session_levels) {
  if (options.cancel != nullptr && options.cancel->cancelled()) {
    return StopReason::kCancelled;
  }
  if (deadline_passed(options.deadline)) return StopReason::kDeadline;
  if (options.max_levels > 0 && session_levels >= options.max_levels) {
    return StopReason::kMaxLevels;
  }
  return StopReason::kNone;
}

// Rebuilds every checkpointed configuration from its word encoding, or the
// first decode error (checksummed files make this near-impossible to hit,
// but a hand-edited checkpoint must fail cleanly, not crash).
StatusOr<std::vector<sim::Config>> decode_checkpoint_configs(
    const ExploreCheckpoint& cp) {
  std::vector<sim::Config> configs;
  configs.reserve(cp.node_words.size());
  for (const auto& words : cp.node_words) {
    auto config = sim::decode_config(words);
    if (!config.is_ok()) return config.status();
    configs.push_back(std::move(config).value());
  }
  return configs;
}

// Snapshot of a paused exploration (graph at a level boundary + the pending
// frontier), ready for write_explore_checkpoint().
ExploreCheckpoint checkpoint_from_graph(const ConfigGraph& graph,
                                        std::span<const std::uint32_t> frontier,
                                        std::uint32_t levels_completed,
                                        std::uint64_t fingerprint,
                                        const ExploreOptions& options,
                                        bool has_flag_fn,
                                        std::int64_t initial_flag) {
  ExploreCheckpoint cp;
  cp.fingerprint = fingerprint;
  cp.task_label = options.checkpoint_label;
  cp.reduction = options.reduction;
  cp.initial_flag = initial_flag;
  cp.has_flag_fn = has_flag_fn;
  cp.max_nodes = options.max_nodes;
  cp.allow_truncation = options.allow_truncation;
  cp.truncated = graph.truncated();
  cp.transition_count = graph.transition_count();
  cp.levels_completed = levels_completed;
  const std::size_t n = graph.nodes().size();
  cp.node_words.reserve(n);
  cp.node_flags.reserve(n);
  cp.node_depths.reserve(n);
  cp.parents.reserve(n);
  cp.parent_steps.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const Node& node = graph.nodes()[i];
    cp.node_words.push_back(node.config.encode());
    cp.node_flags.push_back(node.flag);
    cp.node_depths.push_back(node.depth);
    cp.parents.push_back(graph.parents()[i].first);
    cp.parent_steps.push_back(graph.parents()[i].second);
  }
  cp.discovery_perms = graph.discovery_perms();
  cp.edges = graph.edges();
  cp.frontier.assign(frontier.begin(), frontier.end());
  return cp;
}

Status write_checkpoint(const ConfigGraph& graph,
                        std::span<const std::uint32_t> frontier,
                        std::uint32_t levels_completed,
                        std::uint64_t fingerprint,
                        const ExploreOptions& options, bool has_flag_fn,
                        std::int64_t initial_flag) {
  LBSA_OBS_COUNTER_ADD_V("explore.checkpoint.writes", 1);
  if (obs::heartbeat_enabled()) {
    obs::Progress::global().checkpoint_writes.fetch_add(
        1, std::memory_order_relaxed);
  }
  return write_explore_checkpoint(
      checkpoint_from_graph(graph, frontier, levels_completed, fingerprint,
                            options, has_flag_fn, initial_flag),
      options.checkpoint_path);
}

// Attaches the run's per-worker orbit cache (if any) to `scratch`. The pool
// hands out one single-threaded cache per worker index; caches are keyed by
// the canonicalizer's universe salt, so a pool shared across hierarchy-sweep
// cells self-invalidates when the protocol changes.
void attach_canon_cache(const ExploreOptions& options,
                        const sim::Canonicalizer* sym, std::size_t worker,
                        sim::CanonScratch* scratch) {
  if (sym == nullptr || options.canon_cache_pool == nullptr) return;
  scratch->attach_cache(
      options.canon_cache_pool->worker_cache(worker, sym->universe_salt()));
}

// Publishes the explore.canon.* counters as deltas since the last call (so
// engines can drain at any quiescence cadence), then advances `seen`.
// Volatile: hit/prune tallies depend on expansion interleaving and on cache
// contents carried over from earlier runs sharing the pool.
struct CanonSeen {
  std::uint64_t hits = 0, misses = 0, prunes = 0, fast = 0;
};
void add_canon_metrics(const sim::CanonScratch& s, CanonSeen* seen) {
  if (!obs::metrics_enabled()) return;
  LBSA_OBS_COUNTER_ADD_V("explore.canon.cache_hits",
                         s.cache_hits - seen->hits);
  LBSA_OBS_COUNTER_ADD_V("explore.canon.cache_misses",
                         s.cache_misses - seen->misses);
  LBSA_OBS_COUNTER_ADD_V("explore.canon.prunes", s.prunes - seen->prunes);
  LBSA_OBS_COUNTER_ADD_V("explore.canon.fast_path",
                         s.fast_path - seen->fast);
  *seen = CanonSeen{s.cache_hits, s.cache_misses, s.prunes, s.fast_path};
}

// ---------------------------------------------------------------------------
// Serial reference engine. This is the semantic definition of the canonical
// graph: node ids in BFS discovery order (frontier in id order; within a
// node, pids ascending, then outcome order), parents_ from the discovering
// edge, depths from level-synchronous discovery. The parallel engines below
// must reproduce its output bit for bit on complete explorations.
// ---------------------------------------------------------------------------
}  // namespace

StatusOr<ConfigGraph> Explorer::explore_serial(
    const ExploreOptions& options, const FlagFn& flag_fn,
    std::int64_t initial_flag, const sim::Canonicalizer* sym, bool por,
    std::uint64_t fingerprint, std::uint64_t switch_after_nodes,
    bool* switched) const {
  const sim::Protocol& protocol = *protocol_;
  ConfigGraph graph;
  std::unordered_map<std::vector<std::int64_t>, std::uint32_t, KeyHash> index;

  // Reused scratch: the encoded key only lands in the map on insertion.
  std::vector<std::int64_t> key;
  std::vector<std::uint8_t> perm;
  sim::CanonScratch canon_scratch;
  attach_canon_cache(options, sym, /*worker=*/0, &canon_scratch);
  CanonSeen canon_seen;
  auto intern = [&](sim::Config config, std::int64_t flag,
                    std::uint32_t parent, const sim::Step& step,
                    std::uint32_t depth) -> std::pair<std::uint32_t, bool> {
    if (sym != nullptr) {
      sym->canonical_encode_into(config, &key, &perm, &canon_scratch);
      if (!perm.empty()) LBSA_OBS_COUNTER_ADD("explore.sym.renamed", 1);
    } else {
      config.encode_into(&key);
    }
    key.push_back(flag);
    auto [it, inserted] =
        index.try_emplace(key, static_cast<std::uint32_t>(graph.nodes_.size()));
    if (inserted) {
      LBSA_OBS_COUNTER_ADD("explore.nodes", 1);
      if (sym != nullptr && !perm.empty()) {
        const std::vector<int> as_int(perm.begin(), perm.end());
        sim::apply_pid_permutation(protocol, as_int, &config);
      }
      graph.nodes_.push_back(Node{std::move(config), flag, depth});
      graph.edges_.emplace_back();
      graph.parents_.emplace_back(parent, step);
      if (sym != nullptr) graph.discovery_perms_.push_back(perm);
    }
    return {it->second, inserted};
  };

  std::deque<std::uint32_t> frontier;
  std::uint32_t start_depth = 0;
  if (options.resume != nullptr) {
    // Seed the canonical prefix directly (NOT through intern(): resumed
    // nodes must not re-bump explore.nodes — the counters describe work done
    // this session). The checkpoint stores representatives, so plain
    // encoding reproduces the intern keys even under symmetry reduction.
    const ExploreCheckpoint& cp = *options.resume;
    auto configs = decode_checkpoint_configs(cp);
    if (!configs.is_ok()) return configs.status();
    const std::size_t n = configs.value().size();
    graph.nodes_.reserve(n);
    std::vector<std::int64_t> seed_key;
    for (std::size_t i = 0; i < n; ++i) {
      sim::Config& config = configs.value()[i];
      config.encode_into(&seed_key);
      seed_key.push_back(cp.node_flags[i]);
      const bool fresh =
          index.try_emplace(seed_key, static_cast<std::uint32_t>(i)).second;
      if (!fresh) return invalid_argument("resume: duplicate checkpoint node");
      graph.nodes_.push_back(
          Node{std::move(config), cp.node_flags[i], cp.node_depths[i]});
      graph.parents_.emplace_back(cp.parents[i], cp.parent_steps[i]);
    }
    graph.edges_ = cp.edges;
    graph.discovery_perms_ = cp.discovery_perms;
    graph.transition_count_ = cp.transition_count;
    graph.truncated_ = cp.truncated;
    frontier.assign(cp.frontier.begin(), cp.frontier.end());
    start_depth = cp.levels_completed;
  } else {
    sim::Config init = sim::initial_config(protocol);
    intern(std::move(init), initial_flag, 0, sim::Step{}, 0);
    frontier.push_back(0);
  }

  const LiveProgress live = LiveProgress::capture();
  if (live.on) obs::Progress::global().configure_workers(0);
  const std::uint64_t prefix_nodes =
      options.resume != nullptr ? options.resume->node_words.size() : 0;
  const std::uint64_t prefix_transitions =
      options.resume != nullptr ? options.resume->transition_count : 0;
  std::uint64_t pops = 0;

  // One "explore.level" phase event per BFS level. The frontier is a FIFO,
  // so popped depths are non-decreasing and a depth change marks a level
  // boundary — matching the parallel engine's one-span-per-level exactly.
  bool level_open = false;
  std::uint64_t level_start_us = 0;
  std::uint32_t span_depth = 0;
  std::uint64_t span_nodes = 0;
  auto close_level_span = [&] {
    if (!level_open) return;
    level_open = false;
    obs::TraceEvent event;
    event.name = "explore.level";
    event.cat = obs::kCatPhase;
    event.lane = 0;
    event.ts_us = level_start_us;
    const std::uint64_t now = obs::trace_now_us();
    event.dur_us = now >= level_start_us ? now - level_start_us : 0;
    event.args.emplace_back("level", span_depth);
    event.args.emplace_back("nodes", static_cast<std::int64_t>(span_nodes));
    obs::Tracer::global().record(std::move(event));
  };
  auto open_level_span = [&](std::uint32_t d) {
    span_depth = d;
    span_nodes = 0;
    if (!obs::tracing_enabled()) return;
    level_open = true;
    level_start_us = obs::trace_now_us();
  };
  open_level_span(start_depth);

  // Mid-level lifecycle polling: when a cancel token or deadline is armed,
  // the pop loop below re-checks it every kChunk pops and, on a trip, rolls
  // the graph back to the last level-boundary snapshot — so the interrupted
  // result is still an exact level prefix (the only state a checkpoint can
  // represent) but one huge level can no longer blow past a deadline.
  // The snapshot is the frontier ids plus three scalars, refreshed once per
  // level, and taken only while armed.
  const bool lifecycle_armed =
      options.cancel != nullptr || options.deadline != Deadline{};
  struct LevelSnapshot {
    std::vector<std::uint32_t> frontier;
    std::size_t nodes = 0;
    std::uint64_t transitions = 0;
    bool truncated = false;
    std::uint32_t depth = 0;
  };
  LevelSnapshot snap;
  auto take_snapshot = [&](std::uint32_t d) {
    if (!lifecycle_armed) return;
    snap.frontier.assign(frontier.begin(), frontier.end());
    snap.nodes = graph.nodes_.size();
    snap.transitions = graph.transition_count_;
    snap.truncated = graph.truncated_;
    snap.depth = d;
  };
  take_snapshot(start_depth);

  std::vector<sim::Successor> successors;
  while (!frontier.empty()) {
    const std::uint32_t id = frontier.front();
    const std::uint32_t depth = graph.nodes_[id].depth;

    if (depth != span_depth) {
      close_level_span();
      // Level boundary: every node of depth < `depth` is expanded, and the
      // deque holds exactly the depth-`depth` nodes in ascending id order —
      // the one state a checkpoint can represent and a resume can
      // reproduce. All lifecycle actions happen here and only here.
      live.publish(graph.nodes_.size() - prefix_nodes,
                   graph.transition_count_ - prefix_transitions, depth,
                   frontier.size());
      if (sym != nullptr) add_canon_metrics(canon_scratch, &canon_seen);
      const std::uint32_t session_levels = depth - start_depth;
      if (stop_reason(options, session_levels) != StopReason::kNone) {
        graph.interrupted_ = true;
        graph.levels_completed_ = depth;
        graph.pending_frontier_.assign(frontier.begin(), frontier.end());
        if (!options.checkpoint_path.empty()) {
          const Status written = write_checkpoint(
              graph, graph.pending_frontier_, depth, fingerprint, options,
              flag_fn != nullptr, initial_flag);
          if (!written.is_ok()) return written;
        }
        break;
      }
      if (switch_after_nodes > 0 &&
          graph.nodes_.size() >= switch_after_nodes) {
        // kAuto handoff: return the canonical prefix exactly as an
        // interruption would, but leave checkpoint writing and graph-metric
        // recording to the engine that finishes the run.
        *switched = true;
        graph.interrupted_ = true;
        graph.levels_completed_ = depth;
        graph.pending_frontier_.assign(frontier.begin(), frontier.end());
        break;
      }
      if (!options.checkpoint_path.empty() &&
          options.checkpoint_every_levels > 0 && session_levels > 0 &&
          session_levels % options.checkpoint_every_levels == 0) {
        const std::vector<std::uint32_t> pending(frontier.begin(),
                                                 frontier.end());
        const Status written =
            write_checkpoint(graph, pending, depth, fingerprint, options,
                             flag_fn != nullptr, initial_flag);
        if (!written.is_ok()) return written;
      }
      open_level_span(depth);
      take_snapshot(depth);
    }
    frontier.pop_front();
    ++pops;
    // Mid-level cadence so heartbeats move inside long levels; every 512
    // pops keeps the relaxed-load guard the only cost when unobserved and
    // bounds the publication lag behind actual interning to well under the
    // parallel engines' per-worker chunk cadence times their pool width.
    if (live.on && (pops & 0x1FFu) == 0) {
      live.publish(graph.nodes_.size() - prefix_nodes,
                   graph.transition_count_ - prefix_transitions, span_depth,
                   frontier.size());
    }
    // Mid-level lifecycle poll, every kChunk pops (matching the parallel
    // engines' work-chunk cadence). max_levels stays level-granular; only
    // cancel/deadline — the request-lifecycle knobs — trip mid-level.
    if (lifecycle_armed && (pops & (kChunk - 1)) == 0 &&
        ((options.cancel != nullptr && options.cancel->cancelled()) ||
         deadline_passed(options.deadline))) {
      // Roll back to the level-start snapshot: drop every node discovered
      // during this partial level and the edges its expansions emitted, so
      // the result is the same graph a boundary-time stop would produce.
      graph.nodes_.resize(snap.nodes);
      graph.edges_.resize(snap.nodes);
      graph.parents_.resize(snap.nodes);
      if (sym != nullptr) graph.discovery_perms_.resize(snap.nodes);
      for (const std::uint32_t fid : snap.frontier) graph.edges_[fid].clear();
      graph.transition_count_ = snap.transitions;
      graph.truncated_ = snap.truncated;
      graph.interrupted_ = true;
      graph.levels_completed_ = snap.depth;
      graph.pending_frontier_ = std::move(snap.frontier);
      if (!options.checkpoint_path.empty()) {
        const Status written = write_checkpoint(
            graph, graph.pending_frontier_, snap.depth, fingerprint, options,
            flag_fn != nullptr, initial_flag);
        if (!written.is_ok()) return written;
      }
      break;
    }
    // Copy what we need: intern() may reallocate nodes_.
    const sim::Config config = graph.nodes_[id].config;
    const std::int64_t flag = graph.nodes_[id].flag;
    ++span_nodes;

    const int ample =
        por ? select_ample_pid(protocol, config, flag, flag_fn) : -1;
    if (ample >= 0) {
      LBSA_OBS_COUNTER_ADD("explore.por.skips", config.enabled_count() - 1);
    }
    const int n = static_cast<int>(config.procs.size());
    for (int pid = 0; pid < n; ++pid) {
      if (!config.enabled(pid)) continue;
      if (ample >= 0 && pid != ample) continue;
      successors.clear();
      sim::enumerate_successors(protocol, config, pid, &successors);
      for (sim::Successor& succ : successors) {
        const std::int64_t next_flag =
            flag_fn ? flag_fn(flag, succ.step) : flag;
        auto [to, inserted] = intern(std::move(succ.config), next_flag, id,
                                     succ.step, depth + 1);
        graph.edges_[id].push_back(
            Edge{to, pid, succ.step.action.kind});
        ++graph.transition_count_;
        LBSA_OBS_COUNTER_ADD("explore.transitions", 1);
        if (inserted) {
          if (graph.nodes_.size() > options.max_nodes) {
            if (!options.allow_truncation) {
              return resource_exhausted(
                  "explore: node budget exceeded (" +
                  std::to_string(options.max_nodes) + ")");
            }
            // Truncation invariant: the over-budget node was already pushed
            // into nodes_/edges_/parents_ by intern(), so the edge we just
            // emitted has a valid target and path_to(to) replays — the node
            // is KEPT but (by skipping the frontier push) never expanded.
            graph.truncated_ = true;
            continue;
          }
          frontier.push_back(to);
        }
      }
    }
  }
  close_level_span();
  if (!graph.interrupted_) {
    graph.levels_completed_ =
        graph.nodes_.empty() ? 0 : graph.nodes_.back().depth + 1;
  }
  live.publish(graph.nodes_.size() - prefix_nodes,
               graph.transition_count_ - prefix_transitions,
               graph.levels_completed_, graph.pending_frontier_.size());
  if (sym != nullptr) add_canon_metrics(canon_scratch, &canon_seen);
  LBSA_CHECK(graph.nodes_.size() == graph.edges_.size() &&
             graph.nodes_.size() == graph.parents_.size());
  if (switched == nullptr || !*switched) record_graph_metrics(graph);
  return graph;
}

// ---------------------------------------------------------------------------
// Parallel engines: shared expansion + canonical renumbering machinery.
//
// Determinism recipe (complete graphs are bit-identical to explore_serial):
//   1. Each frontier node is expanded by exactly one worker, which emits its
//      raw edge list in the canonical within-node order (pids ascending,
//      outcomes in enumeration order). Provisional ids from the concurrent
//      intern table are schedule-dependent, but the edge *lists* are not.
//   2. A final single-threaded renumbering pass replays the canonical BFS
//      over the provisional graph: walking nodes in canonical id order and
//      each edge list in order, first-touch assigns canonical ids — which
//      reproduces the serial discovery order, parents and all.
//   3. The level-synchronous engine additionally barriers between levels, so
//      stored depths are exact BFS distances and interruption lands on a
//      level boundary for free. The work-stealing engine has no barriers;
//      its walk derives depths from the canonical parents, and interruption
//      is handled by trimming the walked graph back to the deepest fully
//      expanded level (the ids the walk assigns are depth-monotone, so the
//      serial-identical prefix is literally an array prefix).
//
// The hot path is allocation-free after warm-up: successor keys are encoded
// straight into a per-worker bump arena (Config::encode_to), interned in
// per-shard batches under one shared-lock acquisition each (BatchInternTable),
// and raw edges land in flat per-worker pools. Each node's configuration is
// stored once, in the winning inserter's table payload (losers' copies are
// simply dropped); the canonical pass moves them out into the final graph
// instead of re-decoding keys, and frontier items carry only the node id.
// ---------------------------------------------------------------------------

namespace {

// Payload stored per interned (config, flag) node.
struct NodeMeta {
  std::int64_t flag = 0;
  std::uint32_t depth = 0;
  // Expansion eligibility, read back by the work-stealing trim pass.
  enum State : std::uint8_t {
    kFresh = 0,     // discovered within budget; expandable
    kSeedDone,      // checkpoint-prefix node that is not in the resumed
                    // frontier: already expanded (or budget-barred) in a
                    // previous session
    kBeyondBudget,  // kept under allow_truncation but never expanded
  };
  std::uint8_t state = kFresh;
  // The node's (representative) configuration, moved in by the winning
  // inserter before the id is published. Expanding workers read it through
  // a WorkItem they received over a queue or barrier, so the insertion
  // happens-before every read despite the table not yet being quiescent.
  sim::Config config;
};

using BatchTable = BatchInternTable<NodeMeta>;

// An emitted transition, pre-renumbering: target is a provisional id and the
// full Step is kept so the renumbering pass can rebuild parents_. Under
// symmetry reduction, perm records the canonicalizing permutation of this
// edge's successor (empty = identity); the renumbering pass installs the
// first-touch edge's perm as the node's discovery perm, which keeps
// discovery_perms_ aligned with the canonical parents_ no matter which
// worker interned the node first.
struct RawEdge {
  std::uint32_t to = 0;
  sim::Step step;
  std::vector<std::uint8_t> perm;
};

// One expanded node's slice [begin, end) of the owning worker's RawEdge
// pool, plus its per-expansion reduction tallies (folded into the stable
// counters only for nodes the final graph keeps expanded).
struct EdgeRange {
  std::uint32_t id = 0;  // provisional id of the expanded node
  std::uint32_t begin = 0;
  std::uint32_t end = 0;
  std::uint32_t renamed = 0;    // non-identity canonicalizations
  std::uint32_t por_skips = 0;  // enabled-but-skipped processes
  std::uint8_t had_ample = 0;   // an ample process existed (skips may be 0)
};

// Per-worker edge storage: a flat pool plus one range per expanded node.
struct EdgeSink {
  std::vector<RawEdge> pool;
  std::vector<EdgeRange> ranges;
};

// A frontier entry: just the published node's id plus the two payload
// fields the expander needs before touching the table. The configuration
// itself lives in the node's table payload (see NodeMeta::config).
struct WorkItem {
  std::uint32_t id = 0;  // provisional id
  std::uint32_t depth = 0;
  std::int64_t flag = 0;
};

constexpr std::uint32_t kUnassigned = 0xffffffffu;
// kAuto: hand off to a parallel engine once the serial probe holds this many
// nodes (below it, parallel setup + renumbering overhead beats the win)...
constexpr std::uint64_t kAutoSwitchNodes = 32768;
// ...choosing level-synchronous when the handoff frontier is at least this
// wide per worker (barriers amortize), work-stealing otherwise.
constexpr std::size_t kAutoWideFrontier = 64;

// Per-worker expansion machinery shared by both parallel engines: expands
// frontier items in chunks, encodes successor keys straight into a scratch
// arena, batch-interns them shard by shard, and appends raw edges to the
// worker's EdgeSink. Single-threaded; one instance per worker.
class Expander {
 public:
  Expander(const sim::Protocol* protocol, BatchTable* table,
           const Explorer::FlagFn* flag_fn, const sim::Canonicalizer* sym,
           bool por, std::uint64_t max_nodes, bool allow_truncation,
           std::atomic<bool>* truncated)
      : protocol_(protocol),
        table_(table),
        flag_fn_(flag_fn),
        sym_(sym),
        por_(por),
        max_nodes_(max_nodes),
        allow_truncation_(allow_truncation),
        truncated_(truncated) {}

  // Expands every item of `chunk`, appending one EdgeRange per item to
  // `sink` and passing each newly-discovered within-budget successor to
  // `emit` as a WorkItem. Returns false iff the node budget was exceeded
  // with truncation disallowed (the caller must stop and report
  // RESOURCE_EXHAUSTED).
  template <typename Emit>
  bool expand_chunk(std::span<WorkItem> chunk, EdgeSink* sink, Emit&& emit) {
    scratch_.reset();
    pending_.clear();
    items_.clear();
    for (const WorkItem& item : chunk) {
      // The item arrived over a queue or barrier after its inserter
      // published the node, so this pre-quiescence payload read is ordered
      // after the config move-in (and entries never relocate).
      const sim::Config& config = table_->payload(item.id).config;
      ItemRec rec;
      rec.id = item.id;
      rec.begin = static_cast<std::uint32_t>(pending_.size());
      const int ample =
          por_ ? select_ample_pid(*protocol_, config, item.flag, *flag_fn_)
               : -1;
      if (ample >= 0) {
        rec.had_ample = 1;
        rec.skips = static_cast<std::uint32_t>(config.enabled_count() - 1);
      }
      const int n = static_cast<int>(config.procs.size());
      for (int pid = 0; pid < n; ++pid) {
        if (!config.enabled(pid)) continue;
        if (ample >= 0 && pid != ample) continue;
        successors_.clear();
        sim::enumerate_successors(*protocol_, config, pid, &successors_);
        for (sim::Successor& succ : successors_) {
          const std::int64_t next_flag =
              *flag_fn_ ? (*flag_fn_)(item.flag, succ.step) : item.flag;
          Pending p;
          if (sym_ != nullptr) {
            sym_->canonical_encode_into(succ.config, &sym_key_, &perm_,
                                        &canon_scratch_);
            if (!perm_.empty()) {
              ++rec.renamed;
              // Carry (and later expand) the representative, never the raw
              // successor: expansion must be a pure function of the
              // interned configuration.
              const std::vector<int> as_int(perm_.begin(), perm_.end());
              sim::apply_pid_permutation(*protocol_, as_int, &succ.config);
            }
            const std::size_t len = sym_key_.size() + 1;
            std::int64_t* words = scratch_.alloc(len);
            std::copy(sym_key_.begin(), sym_key_.end(), words);
            words[len - 1] = next_flag;
            p.cand.key = {words, len};
            p.perm = perm_;
          } else {
            const std::size_t len = succ.config.encoded_size() + 1;
            std::int64_t* words = scratch_.alloc(len);
            succ.config.encode_to(words);
            words[len - 1] = next_flag;
            p.cand.key = {words, len};
          }
          p.cand.hash = hash_words_128(p.cand.key);
          // The config rides in the candidate payload: if this candidate
          // wins the insertion race it is moved into the entry, otherwise
          // it is dropped with the candidate.
          p.cand.payload = NodeMeta{next_flag, item.depth + 1,
                                    NodeMeta::kFresh, std::move(succ.config)};
          p.flag = next_flag;
          p.depth = item.depth + 1;
          p.step = succ.step;
          pending_.push_back(std::move(p));
        }
      }
      rec.end = static_cast<std::uint32_t>(pending_.size());
      items_.push_back(rec);
    }

    // One probe pass per shard for the whole chunk: bucket, then batch.
    for (auto& bucket : buckets_) bucket.clear();
    for (Pending& p : pending_) {
      buckets_[BatchTable::shard_of(p.cand.hash)].push_back(&p.cand);
    }
    for (std::uint32_t s = 0; s < BatchTable::kShardCount; ++s) {
      if (buckets_[s].empty()) continue;
      table_->intern_batch(s, buckets_[s], &key_arena_, &tally_);
      LBSA_OBS_HISTOGRAM_OBSERVE_V("explore.intern.batch_size",
                                   buckets_[s].size());
    }

    // Resolve: raw edges in canonical within-node order; fresh discoveries
    // are queued (or budget-barred) exactly once, by their inserter.
    bool ok = true;
    for (const ItemRec& rec : items_) {
      EdgeRange range;
      range.id = rec.id;
      range.renamed = rec.renamed;
      range.por_skips = rec.skips;
      range.had_ample = rec.had_ample;
      range.begin = static_cast<std::uint32_t>(sink->pool.size());
      for (std::uint32_t i = rec.begin; i < rec.end; ++i) {
        Pending& p = pending_[i];
        sink->pool.push_back(RawEdge{p.cand.id, p.step, std::move(p.perm)});
        if (!p.cand.inserted) continue;
        // seq reproduces the serial budget cut: the first max_nodes
        // insertions (in global insertion order) are expandable.
        if (p.cand.seq > max_nodes_) {
          if (!allow_truncation_) {
            ok = false;
            continue;
          }
          table_->payload_mut(p.cand.id).state = NodeMeta::kBeyondBudget;
          truncated_->store(true, std::memory_order_relaxed);
          continue;
        }
        emit(WorkItem{p.cand.id, p.depth, p.flag});
      }
      range.end = static_cast<std::uint32_t>(sink->pool.size());
      sink->ranges.push_back(range);
    }
    return ok;
  }

  const BatchTable::Tally& tally() const { return tally_; }

  // The worker's canonicalization scratch (cache attachment + tallies).
  // Exposed so the engine can attach a per-worker cache after construction
  // and drain the tallies into counters at its quiescence points.
  sim::CanonScratch* canon_scratch() { return &canon_scratch_; }
  const sim::CanonScratch& canon_scratch() const { return canon_scratch_; }

 private:
  struct Pending {
    BatchTable::Candidate cand;
    sim::Step step;
    std::vector<std::uint8_t> perm;
    std::int64_t flag = 0;
    std::uint32_t depth = 0;
  };
  struct ItemRec {
    std::uint32_t id = 0;
    std::uint32_t begin = 0;
    std::uint32_t end = 0;
    std::uint32_t renamed = 0;
    std::uint32_t skips = 0;
    std::uint8_t had_ample = 0;
  };

  const sim::Protocol* protocol_;
  BatchTable* table_;
  const Explorer::FlagFn* flag_fn_;
  const sim::Canonicalizer* sym_;
  bool por_;
  std::uint64_t max_nodes_;
  bool allow_truncation_;
  std::atomic<bool>* truncated_;
  // Receives the interned key words of this worker's winning inserts; must
  // outlive every read of the table, so it lives with the worker, not the
  // chunk.
  WordArena key_arena_{1u << 15};
  // Per-chunk scratch for candidate keys; reset at every chunk.
  WordArena scratch_{1u << 14};
  BatchTable::Tally tally_;
  sim::CanonScratch canon_scratch_;
  std::vector<sim::Successor> successors_;
  std::vector<std::int64_t> sym_key_;
  std::vector<std::uint8_t> perm_;
  std::vector<Pending> pending_;
  std::vector<ItemRec> items_;
  std::array<std::vector<BatchTable::Candidate*>, BatchTable::kShardCount>
      buckets_;
};

// One worker's whole state, for both engines.
struct ParallelWorker {
  explicit ParallelWorker(Expander expander) : ex(std::move(expander)) {}
  Expander ex;
  EdgeSink sink;
  std::vector<WorkItem> next;  // level-sync: next-level discoveries
  std::uint64_t expanded = 0;
  std::uint64_t steals = 0;        // work-stealing only
  std::uint64_t steal_misses = 0;  // full sweeps that found nothing
};

// The table contents after seeding (root or checkpoint prefix), before any
// worker runs.
struct SeedState {
  std::vector<WorkItem> frontier;
  // Resume only: prefix_prov[i] is the provisional id of canonical
  // checkpoint node i; the renumbering walk is seeded with this prefix.
  std::vector<std::uint32_t> prefix_prov;
  std::vector<std::uint8_t> root_perm;  // fresh runs: root's canonical perm
  std::uint32_t root_id = 0;
  std::uint32_t start_depth = 0;
  std::uint64_t base_transitions = 0;
  bool truncated = false;
};

StatusOr<SeedState> seed_table(const sim::Protocol& protocol,
                               BatchTable* table, WordArena* seed_arena,
                               BatchTable::Tally* tally,
                               const ExploreCheckpoint* resume,
                               const sim::Canonicalizer* sym,
                               std::int64_t initial_flag) {
  SeedState seed;
  std::vector<std::int64_t> key;
  if (resume != nullptr) {
    auto configs_or = decode_checkpoint_configs(*resume);
    if (!configs_or.is_ok()) return configs_or.status();
    std::vector<sim::Config>& configs = configs_or.value();
    const std::size_t n = configs.size();
    std::vector<std::uint8_t> in_frontier(n, 0);
    for (std::uint32_t id : resume->frontier) in_frontier[id] = 1;
    seed.prefix_prov.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      configs[i].encode_into(&key);
      key.push_back(resume->node_flags[i]);
      NodeMeta meta;
      meta.flag = resume->node_flags[i];
      meta.depth = resume->node_depths[i];
      meta.state = in_frontier[i] ? NodeMeta::kFresh : NodeMeta::kSeedDone;
      meta.config = std::move(configs[i]);  // after the encode above
      const auto res = table->intern(key, std::move(meta), seed_arena, tally);
      if (!res.inserted) {
        return invalid_argument("resume: duplicate checkpoint node");
      }
      seed.prefix_prov.push_back(res.id);
    }
    seed.frontier.reserve(resume->frontier.size());
    for (std::uint32_t id : resume->frontier) {
      seed.frontier.push_back(WorkItem{seed.prefix_prov[id],
                                       resume->node_depths[id],
                                       resume->node_flags[id]});
    }
    seed.start_depth = resume->levels_completed;
    seed.base_transitions = resume->transition_count;
    seed.truncated = resume->truncated;
  } else {
    sim::Config init = sim::initial_config(protocol);
    if (sym != nullptr) sym->canonicalize(&init, &seed.root_perm);
    init.encode_into(&key);
    key.push_back(initial_flag);
    const auto res = table->intern(
        key, NodeMeta{initial_flag, 0, NodeMeta::kFresh, std::move(init)},
        seed_arena, tally);
    seed.root_id = res.id;
    seed.frontier.push_back(WorkItem{res.id, 0, initial_flag});
  }
  return seed;
}

// The canonical graph plus canonical-indexed side data the engines need
// afterwards (trim pass, stable-counter flush). Valid only at quiescence.
struct CanonicalBuild {
  ConfigGraph graph;
  std::vector<std::uint32_t> canon;  // provisional -> canonical id
  std::vector<std::uint8_t> state;   // NodeMeta::State per canonical id
  std::vector<std::uint8_t> expanded;  // expanded THIS session
  std::vector<std::uint32_t> renamed;  // per-expansion session tallies...
  std::vector<std::uint32_t> skips;
  std::vector<std::uint8_t> had_ample;
};

}  // namespace

namespace internal {

struct GraphBuilder {
  // Canonical renumbering walk, runnable whenever workers are quiescent.
  // Configurations come straight from the node payloads: moved out when
  // take_configs is set (final builds — the table is dead afterwards),
  // copied when not (mid-run checkpoint snapshots, whose payloads workers
  // will still expand from).
  // trust_depths: the level-synchronous engine's stored depths are exact
  // BFS distances and are checked against the canonical parent; the
  // work-stealing engine's stored depths are only upper bounds (a steal can
  // discover a node along a non-shortest path first), so its walk derives
  // depths from the canonical parents instead.
  static CanonicalBuild build(BatchTable& table,
                              const std::vector<ParallelWorker>& workers,
                              const SeedState& seed,
                              const ExploreCheckpoint* resume, bool sym_active,
                              bool trust_depths, bool truncated_flag,
                              bool take_configs) {
    struct RawRef {
      const EdgeSink* sink = nullptr;
      const EdgeRange* range = nullptr;
    };
    std::vector<RawRef> raw(table.id_bound());
    std::uint64_t session_edges = 0;
    for (const ParallelWorker& w : workers) {
      for (const EdgeRange& r : w.sink.ranges) {
        raw[r.id] = RawRef{&w.sink, &r};
        session_edges += r.end - r.begin;
      }
    }

    CanonicalBuild out;
    ConfigGraph& graph = out.graph;
    graph.truncated_ = truncated_flag;
    graph.transition_count_ = seed.base_transitions + session_edges;
    const std::size_t total = static_cast<std::size_t>(table.size());
    graph.nodes_.reserve(total);
    graph.edges_.reserve(total);
    graph.parents_.reserve(total);
    out.canon.assign(table.id_bound(), kUnassigned);
    std::vector<std::uint32_t> order;  // canonical BFS queue (provisional)
    order.reserve(total);

    auto node_config = [&](std::uint32_t prov) -> sim::Config {
      NodeMeta& meta = table.payload_mut(prov);
      if (take_configs) return std::move(meta.config);
      return meta.config;
    };

    if (resume != nullptr) {
      // The checkpointed prefix IS the canonical prefix: re-seat it
      // verbatim, then let first-touch discovery number this session's
      // nodes — it continues the serial numbering exactly (frontier nodes
      // sit in the prefix; their session edges are walked in canonical
      // order below).
      const std::size_t n = seed.prefix_prov.size();
      for (std::size_t i = 0; i < n; ++i) {
        const std::uint32_t prov = seed.prefix_prov[i];
        out.canon[prov] = static_cast<std::uint32_t>(i);
        order.push_back(prov);
        graph.nodes_.push_back(Node{node_config(prov), resume->node_flags[i],
                                    resume->node_depths[i]});
        graph.parents_.emplace_back(resume->parents[i],
                                    resume->parent_steps[i]);
      }
      graph.edges_ = resume->edges;
      graph.discovery_perms_ = resume->discovery_perms;
    } else {
      out.canon[seed.root_id] = 0;
      order.push_back(seed.root_id);
      graph.nodes_.push_back(Node{node_config(seed.root_id),
                                  table.payload(seed.root_id).flag, 0});
      graph.edges_.emplace_back();
      graph.parents_.emplace_back(0, sim::Step{});
      if (sym_active) graph.discovery_perms_.push_back(seed.root_perm);
    }

    for (std::size_t i = 0; i < order.size(); ++i) {
      const std::uint32_t u = order[i];
      const std::uint32_t cu = static_cast<std::uint32_t>(i);
      const RawRef ref = raw[u];
      if (ref.range == nullptr) continue;  // not expanded (this session)
      for (std::uint32_t e = ref.range->begin; e < ref.range->end; ++e) {
        const RawEdge& edge = ref.sink->pool[e];
        if (out.canon[edge.to] == kUnassigned) {
          out.canon[edge.to] = static_cast<std::uint32_t>(graph.nodes_.size());
          const NodeMeta& meta = table.payload(edge.to);
          std::uint32_t d;
          if (trust_depths) {
            // Level-synchronous discovery makes stored depths exact; the
            // canonical parent is one level up by construction.
            d = meta.depth;
            LBSA_CHECK(d == graph.nodes_[cu].depth + 1);
          } else {
            d = graph.nodes_[cu].depth + 1;
          }
          graph.nodes_.push_back(Node{node_config(edge.to), meta.flag, d});
          graph.edges_.emplace_back();
          graph.parents_.emplace_back(cu, edge.step);
          // The canonical discovery perm is the first-touch edge's perm
          // (the racing worker's perm may belong to a different parent
          // edge).
          if (sym_active) graph.discovery_perms_.push_back(edge.perm);
          order.push_back(edge.to);
        }
        graph.edges_[cu].push_back(
            Edge{out.canon[edge.to], edge.step.pid, edge.step.action.kind});
      }
    }
    // Every interned node has an in-edge from an expanded node (or is the
    // root / checkpoint prefix), so the walk must have covered the table.
    LBSA_CHECK(graph.nodes_.size() == total);
    LBSA_CHECK(graph.nodes_.size() == graph.edges_.size() &&
               graph.nodes_.size() == graph.parents_.size());

    out.state.assign(total, NodeMeta::kFresh);
    out.expanded.assign(total, 0);
    out.renamed.assign(total, 0);
    out.skips.assign(total, 0);
    out.had_ample.assign(total, 0);
    for (std::size_t i = 0; i < order.size(); ++i) {
      out.state[i] = table.payload(order[i]).state;
    }
    for (const ParallelWorker& w : workers) {
      for (const EdgeRange& r : w.sink.ranges) {
        const std::uint32_t c = out.canon[r.id];
        out.expanded[c] = 1;
        out.renamed[c] = r.renamed;
        out.skips[c] = r.por_skips;
        out.had_ample[c] = r.had_ample;
      }
    }
    return out;
  }

  // Work-stealing interruption: trims the walked graph back to the deepest
  // level L such that every node of depth < L is expanded — exactly the
  // state a serial run interrupted at boundary L would return (for
  // non-truncated runs; a truncated prefix is schedule-dependent for every
  // engine). Returns false (untouched) when the graph is complete. Walk
  // depths are non-decreasing in canonical id order (FIFO walk), so the
  // prefix is literally an array prefix.
  static bool trim_to_complete_prefix(CanonicalBuild* b,
                                      bool prefix_truncated) {
    ConfigGraph& graph = b->graph;
    std::uint32_t level = std::numeric_limits<std::uint32_t>::max();
    for (std::size_t i = 0; i < graph.nodes_.size(); ++i) {
      if (b->state[i] == NodeMeta::kFresh && !b->expanded[i]) {
        level = std::min(level, graph.nodes_[i].depth);
      }
    }
    if (level == std::numeric_limits<std::uint32_t>::max()) return false;

    std::size_t keep = graph.nodes_.size();
    for (std::size_t i = 0; i < graph.nodes_.size(); ++i) {
      if (graph.nodes_[i].depth > level) {
        keep = i;
        break;
      }
    }
    graph.nodes_.resize(keep);
    graph.edges_.resize(keep);
    graph.parents_.resize(keep);
    if (!graph.discovery_perms_.empty()) graph.discovery_perms_.resize(keep);
    graph.pending_frontier_.clear();
    bool kept_beyond = false;
    std::uint64_t transitions = 0;
    for (std::size_t i = 0; i < keep; ++i) {
      // Depth-L nodes may have been expanded already; a serial run
      // interrupted at boundary L has not expanded any of them, so their
      // edges (and everything those edges discovered, dropped by the resize
      // above) are discarded and they return to the pending frontier.
      if (graph.nodes_[i].depth == level) graph.edges_[i].clear();
      transitions += graph.edges_[i].size();
      if (b->state[i] == NodeMeta::kBeyondBudget) kept_beyond = true;
      if (graph.nodes_[i].depth == level &&
          b->state[i] == NodeMeta::kFresh) {
        graph.pending_frontier_.push_back(static_cast<std::uint32_t>(i));
      }
    }
    graph.transition_count_ = transitions;
    graph.truncated_ = kept_beyond || prefix_truncated;
    graph.interrupted_ = true;
    graph.levels_completed_ = level;
    return true;
  }
};

}  // namespace internal

namespace {

// Stable explorer counters, derived from the canonical graph so totals are
// byte-identical to the serial engine no matter how expansion was scheduled —
// including registration: a counter the serial engine would have ADDed
// (even with 0) is ADDed here, and one it never touches is not.
// level_limit bounds which nodes' per-expansion tallies count: UINT32_MAX
// for complete / level-boundary graphs, the trimmed level for a trimmed
// work-stealing graph (whose deeper expansions were discarded).
void add_stable_counters(const CanonicalBuild& b, const ConfigGraph& graph,
                         const SeedState& seed, bool fresh_run,
                         std::uint32_t level_limit) {
  const std::uint64_t prefix = seed.prefix_prov.size();
  const std::uint64_t new_nodes = graph.nodes().size() - prefix;
  if (new_nodes > 0) LBSA_OBS_COUNTER_ADD("explore.nodes", new_nodes);
  const std::uint64_t new_transitions =
      graph.transition_count() - seed.base_transitions;
  if (new_transitions > 0) {
    LBSA_OBS_COUNTER_ADD("explore.transitions", new_transitions);
  }
  // The serial engine counts a rename per canonicalized successor (duplicate
  // or not) plus one for the root of a fresh run.
  std::uint64_t renamed = fresh_run && !seed.root_perm.empty() ? 1 : 0;
  std::uint64_t skips = 0;
  bool any_ample = false;
  for (std::size_t i = 0; i < graph.nodes().size(); ++i) {
    if (graph.nodes()[i].depth >= level_limit) continue;
    renamed += b.renamed[i];
    skips += b.skips[i];
    any_ample = any_ample || b.had_ample[i] != 0;
  }
  if (renamed > 0) LBSA_OBS_COUNTER_ADD("explore.sym.renamed", renamed);
  if (any_ample) LBSA_OBS_COUNTER_ADD("explore.por.skips", skips);
}

// Intern-table totals (quiescent). Probe counts depend on the insertion
// interleaving and the serial engine has no intern table at all, so every
// explore.intern.* metric is volatile by construction.
void add_intern_metrics(const BatchTable& table,
                        const BatchTable::Tally& tally) {
  if (!obs::metrics_enabled()) return;
  const auto stats = table.stats();
  LBSA_OBS_COUNTER_ADD_V("explore.intern.probes", tally.probes);
  LBSA_OBS_COUNTER_ADD_V("explore.intern.cas_retries", tally.cas_retries);
  LBSA_OBS_GAUGE_SET_V("explore.intern.entries",
                       static_cast<std::int64_t>(stats.entries));
  LBSA_OBS_GAUGE_SET_V("explore.intern.slots",
                       static_cast<std::int64_t>(stats.slots));
  LBSA_OBS_GAUGE_SET_V("explore.intern.max_shard_entries",
                       static_cast<std::int64_t>(stats.max_shard_entries));
  LBSA_OBS_GAUGE_SET_V("explore.intern.growths",
                       static_cast<std::int64_t>(stats.growths));
  LBSA_OBS_HISTOGRAM_OBSERVE_V(
      "explore.intern.probe_length",
      stats.entries == 0 ? 0 : tally.probes / stats.entries);
}

// Canonical ids of the pending frontier (ascending — the serial deque
// order), from a post-walk canon map.
std::vector<std::uint32_t> canonical_frontier(
    const std::vector<WorkItem>& frontier,
    const std::vector<std::uint32_t>& canon) {
  std::vector<std::uint32_t> pending;
  pending.reserve(frontier.size());
  for (const WorkItem& item : frontier) pending.push_back(canon[item.id]);
  std::sort(pending.begin(), pending.end());
  return pending;
}

void name_trace_lanes(int threads) {
  if (!obs::tracing_enabled()) return;
  obs::Tracer::global().set_lane_name(0, "coordinator");
  for (int t = 0; t < threads; ++t) {
    obs::Tracer::global().set_lane_name(t + 1, "worker " + std::to_string(t));
  }
}

}  // namespace

// ---------------------------------------------------------------------------
// Level-synchronous parallel engine.
// ---------------------------------------------------------------------------

StatusOr<ConfigGraph> Explorer::explore_parallel(
    const ExploreOptions& options, int threads, const FlagFn& flag_fn,
    std::int64_t initial_flag, const sim::Canonicalizer* sym, bool por,
    std::uint64_t fingerprint) const {
  const sim::Protocol& protocol = *protocol_;
  BatchTable table;
  std::atomic<bool> exhausted{false};  // budget hit, truncation not allowed
  std::atomic<bool> truncated{false};

  WordArena seed_arena;
  BatchTable::Tally seed_tally;
  auto seed_or = seed_table(protocol, &table, &seed_arena, &seed_tally,
                            options.resume, sym, initial_flag);
  if (!seed_or.is_ok()) return seed_or.status();
  SeedState seed = std::move(seed_or).value();
  truncated.store(seed.truncated, std::memory_order_relaxed);
  std::vector<WorkItem> frontier = std::move(seed.frontier);

  const LiveProgress live = LiveProgress::capture();
  if (live.on) obs::Progress::global().configure_workers(threads);
  const std::uint64_t prefix_nodes = seed.prefix_prov.size();

  name_trace_lanes(threads);

  std::vector<ParallelWorker> workers;
  workers.reserve(static_cast<std::size_t>(threads));
  for (int t = 0; t < threads; ++t) {
    workers.emplace_back(Expander(&protocol, &table, &flag_fn, sym, por,
                                  options.max_nodes, options.allow_truncation,
                                  &truncated));
    attach_canon_cache(options, sym, static_cast<std::size_t>(t),
                       workers.back().ex.canon_scratch());
  }

  std::atomic<std::size_t> cursor{0};
  std::uint32_t depth = seed.start_depth;  // level currently expanding
  std::atomic<bool> done{false};
  // Mid-level lifecycle stop: workers poll cancel/deadline at every chunk
  // claim (the coordinator only looks at level boundaries) and raise this
  // flag, so one huge level cannot blow past a request deadline. The
  // partially expanded level is discarded by the trim pass below — the
  // result is the deepest complete level prefix, same as a boundary stop.
  const bool lifecycle_armed =
      options.cancel != nullptr || options.deadline != Deadline{};
  std::atomic<bool> lifecycle_stop{false};

  std::barrier<> level_start(threads + 1);
  std::barrier<> level_end(threads + 1);

  auto worker_main = [&](int widx) {
    ParallelWorker& w = workers[static_cast<std::size_t>(widx)];
    obs::Progress::WorkerSlot* slot =
        live.on ? obs::Progress::global().worker(widx) : nullptr;
    std::uint64_t seen_cas_retries = 0;
    std::uint64_t seen_edges = 0;
    CanonSeen canon_seen;
    while (true) {
      level_start.arrive_and_wait();
      if (done.load(std::memory_order_acquire)) return;
      // Per-worker-thread lane; "worker" events scale with the pool size and
      // are excluded from trace-count determinism comparisons.
      obs::Span worker_span("explore.worker", obs::kCatWorker, widx + 1);
      if (slot != nullptr) slot->busy.store(1, std::memory_order_relaxed);
      std::uint64_t expanded = 0;
      while (!exhausted.load(std::memory_order_relaxed) &&
             !lifecycle_stop.load(std::memory_order_relaxed)) {
        const std::size_t begin =
            cursor.fetch_add(kChunk, std::memory_order_relaxed);
        if (begin >= frontier.size()) break;
        // Work-chunk boundary lifecycle poll (every kChunk items).
        if (lifecycle_armed &&
            ((options.cancel != nullptr && options.cancel->cancelled()) ||
             deadline_passed(options.deadline))) {
          lifecycle_stop.store(true, std::memory_order_relaxed);
          break;
        }
        const std::size_t end = std::min(frontier.size(), begin + kChunk);
        const bool ok = w.ex.expand_chunk(
            std::span<WorkItem>(frontier.data() + begin, end - begin),
            &w.sink,
            [&w](WorkItem&& item) { w.next.push_back(std::move(item)); });
        expanded += end - begin;
        if (slot != nullptr) {
          // Work-chunk boundary: live-publish mid-level so heartbeats keep
          // moving through a huge level (mirrors the work-stealing engine).
          // Concurrent absolute republications of table.size() race; a
          // stale smaller one must not un-publish, hence raise().
          slot->expanded.fetch_add(end - begin, std::memory_order_relaxed);
          obs::Progress& p = obs::Progress::global();
          const std::uint64_t edges = w.sink.pool.size();
          p.transitions_total.fetch_add(edges - seen_edges,
                                        std::memory_order_relaxed);
          seen_edges = edges;
          obs::Progress::raise(p.nodes_total,
                               live.nodes_base + table.size() - prefix_nodes);
        }
        if (!ok) exhausted.store(true, std::memory_order_relaxed);
      }
      w.expanded += expanded;
      if (slot != nullptr) {
        slot->busy.store(0, std::memory_order_relaxed);
        const std::uint64_t cas_retries = w.ex.tally().cas_retries;
        slot->cas_retries.fetch_add(cas_retries - seen_cas_retries,
                                    std::memory_order_relaxed);
        seen_cas_retries = cas_retries;
      }
      // Level boundary: drain canonicalization tallies so heartbeat
      // snapshots see them move while the run is live.
      if (sym != nullptr) {
        add_canon_metrics(*w.ex.canon_scratch(), &canon_seen);
      }
      worker_span.arg("expanded", static_cast<std::int64_t>(expanded));
      level_end.arrive_and_wait();
    }
  };

  std::vector<std::thread> pool;
  pool.reserve(static_cast<std::size_t>(threads));
  for (int t = 0; t < threads; ++t) pool.emplace_back(worker_main, t);

  bool interrupted = false;
  bool midlevel = false;  // interruption landed inside a level
  Status checkpoint_status = Status::ok();
  while (!frontier.empty() && !exhausted.load(std::memory_order_relaxed)) {
    // Top of loop == level boundary: workers quiescent, every level < depth
    // fully expanded, `frontier` holding exactly the depth-`depth` nodes.
    if (live.on) {
      std::uint64_t session_edges = 0;
      for (const ParallelWorker& w : workers) session_edges += w.sink.pool.size();
      live.publish(table.size() - prefix_nodes, session_edges, depth,
                   frontier.size());
    }
    const std::uint32_t session_levels = depth - seed.start_depth;
    if (stop_reason(options, session_levels) != StopReason::kNone) {
      interrupted = true;
      break;
    }
    if (!options.checkpoint_path.empty() &&
        options.checkpoint_every_levels > 0 && session_levels > 0 &&
        session_levels % options.checkpoint_every_levels == 0) {
      const CanonicalBuild snapshot = internal::GraphBuilder::build(
          table, workers, seed, options.resume, sym != nullptr,
          /*trust_depths=*/true, truncated.load(std::memory_order_relaxed),
          /*take_configs=*/false);
      checkpoint_status = write_checkpoint(
          snapshot.graph, canonical_frontier(frontier, snapshot.canon), depth,
          fingerprint, options, flag_fn != nullptr, initial_flag);
      if (!checkpoint_status.is_ok()) break;
    }
    // Mirrors the serial engine's one "explore.level" phase span per level.
    obs::Span level_span("explore.level", obs::kCatPhase, /*lane=*/0);
    level_span.arg("level", depth);
    level_span.arg("nodes", static_cast<std::int64_t>(frontier.size()));
    cursor.store(0, std::memory_order_relaxed);
    level_start.arrive_and_wait();
    // Workers expand this level...
    level_end.arrive_and_wait();
    if (lifecycle_stop.load(std::memory_order_relaxed)) {
      // A worker tripped cancel/deadline mid-level: this level is partially
      // expanded, so skip the merge and let the trim pass roll the build
      // back to the last complete level boundary.
      interrupted = true;
      midlevel = true;
      break;
    }
    std::vector<WorkItem> next;
    for (ParallelWorker& w : workers) {
      // Cross-worker concatenation order is arbitrary; the renumbering pass
      // is insensitive to it.
      std::move(w.next.begin(), w.next.end(), std::back_inserter(next));
      w.next.clear();
    }
    frontier = std::move(next);
    ++depth;
  }
  done.store(true, std::memory_order_release);
  level_start.arrive_and_wait();
  for (std::thread& t : pool) t.join();
  if (!checkpoint_status.is_ok()) return checkpoint_status;

  BatchTable::Tally tally = seed_tally;
  for (const ParallelWorker& w : workers) tally += w.ex.tally();
  add_intern_metrics(table, tally);

  if (exhausted.load()) {
    return resource_exhausted("explore: node budget exceeded (" +
                              std::to_string(options.max_nodes) + ")");
  }

  // --- Canonical renumbering (single-threaded, at quiescence). ---
  CanonicalBuild built = internal::GraphBuilder::build(
      table, workers, seed, options.resume, sym != nullptr,
      /*trust_depths=*/true, truncated.load(std::memory_order_relaxed),
      /*take_configs=*/true);
  // A mid-level stop leaves the current level partially expanded; trim back
  // to the last complete level boundary (same state a boundary-time stop
  // would have produced). Level-synchronous expansion keeps stored depths
  // exact, so the trimmed prefix is an array prefix here too.
  bool trimmed = false;
  if (midlevel) {
    trimmed =
        internal::GraphBuilder::trim_to_complete_prefix(&built, seed.truncated);
  }
  ConfigGraph graph = std::move(built.graph);
  if (midlevel && !trimmed) {
    // The poll tripped after every frontier node was already expanded: the
    // graph is complete after all.
    interrupted = false;
  }
  if (interrupted) {
    if (!midlevel) {
      graph.interrupted_ = true;
      graph.levels_completed_ = depth;
      graph.pending_frontier_ = canonical_frontier(frontier, built.canon);
    }  // else: trim_to_complete_prefix already set the interruption state.
    if (!options.checkpoint_path.empty()) {
      const Status written = write_checkpoint(
          graph, graph.pending_frontier_, graph.levels_completed_, fingerprint,
          options, flag_fn != nullptr, initial_flag);
      if (!written.is_ok()) return written;
    }
  } else {
    graph.levels_completed_ =
        graph.nodes_.empty() ? 0 : graph.nodes_.back().depth + 1;
  }
  add_stable_counters(built, graph, seed, options.resume == nullptr,
                      trimmed ? graph.levels_completed_
                              : std::numeric_limits<std::uint32_t>::max());
  live.publish(graph.nodes_.size() - prefix_nodes,
               graph.transition_count() - seed.base_transitions,
               graph.levels_completed_, graph.pending_frontier_.size());
  record_graph_metrics(graph);
  return graph;
}

// ---------------------------------------------------------------------------
// Work-stealing engine.
// ---------------------------------------------------------------------------

StatusOr<ConfigGraph> Explorer::explore_work_stealing(
    const ExploreOptions& options, int threads, const FlagFn& flag_fn,
    std::int64_t initial_flag, const sim::Canonicalizer* sym, bool por,
    std::uint64_t fingerprint) const {
  const sim::Protocol& protocol = *protocol_;
  BatchTable table;
  std::atomic<bool> exhausted{false};
  std::atomic<bool> truncated{false};

  WordArena seed_arena;
  BatchTable::Tally seed_tally;
  auto seed_or = seed_table(protocol, &table, &seed_arena, &seed_tally,
                            options.resume, sym, initial_flag);
  if (!seed_or.is_ok()) return seed_or.status();
  SeedState seed = std::move(seed_or).value();
  truncated.store(seed.truncated, std::memory_order_relaxed);

  // max_levels is an expansion-depth bound here: discoveries at the bound
  // are interned but never queued, and the trim pass reports the level
  // actually completed.
  const std::uint32_t depth_bound =
      options.max_levels > 0
          ? seed.start_depth + options.max_levels
          : std::numeric_limits<std::uint32_t>::max();

  const LiveProgress live = LiveProgress::capture();
  if (live.on) obs::Progress::global().configure_workers(threads);
  const std::uint64_t prefix_nodes = seed.prefix_prov.size();

  name_trace_lanes(threads);

  std::vector<ParallelWorker> workers;
  workers.reserve(static_cast<std::size_t>(threads));
  for (int t = 0; t < threads; ++t) {
    workers.emplace_back(Expander(&protocol, &table, &flag_fn, sym, por,
                                  options.max_nodes, options.allow_truncation,
                                  &truncated));
    attach_canon_cache(options, sym, static_cast<std::size_t>(t),
                       workers.back().ex.canon_scratch());
  }

  struct WsQueue {
    std::mutex mu;
    std::deque<WorkItem> items;
  };
  std::deque<WsQueue> queues(static_cast<std::size_t>(threads));
  // Items discovered but not yet expanded (queued or inside a worker's
  // chunk). Zero with all queues empty == global termination.
  std::atomic<std::int64_t> in_flight{0};
  std::atomic<bool> stop{false};

  {
    std::size_t t = 0;
    in_flight.store(static_cast<std::int64_t>(seed.frontier.size()),
                    std::memory_order_relaxed);
    for (WorkItem& item : seed.frontier) {
      queues[t % static_cast<std::size_t>(threads)].items.push_back(
          std::move(item));
      ++t;
    }
    seed.frontier.clear();
  }

  auto worker_main = [&](int widx) {
    ParallelWorker& w = workers[static_cast<std::size_t>(widx)];
    obs::Span worker_span("explore.worker", obs::kCatWorker, widx + 1);
    obs::Progress::WorkerSlot* slot =
        live.on ? obs::Progress::global().worker(widx) : nullptr;
    std::uint64_t seen_cas_retries = 0;
    std::uint64_t seen_edges = 0;
    CanonSeen canon_seen;
    std::vector<WorkItem> chunk;
    auto emit = [&](WorkItem&& item) {
      if (item.depth >= depth_bound) return;  // discovered, never expanded
      in_flight.fetch_add(1, std::memory_order_acq_rel);
      WsQueue& own = queues[static_cast<std::size_t>(widx)];
      std::lock_guard<std::mutex> lock(own.mu);
      own.items.push_back(std::move(item));
    };
    while (!stop.load(std::memory_order_relaxed)) {
      chunk.clear();
      {
        WsQueue& own = queues[static_cast<std::size_t>(widx)];
        std::lock_guard<std::mutex> lock(own.mu);
        while (!own.items.empty() && chunk.size() < kChunk) {
          chunk.push_back(std::move(own.items.front()));
          own.items.pop_front();
        }
      }
      if (chunk.empty() && threads > 1) {
        // Steal up to half the victim's queue (capped at a chunk), oldest
        // items first — oldest are shallowest, which keeps expansion close
        // to BFS order and the eventual trim level deep.
        for (int off = 1; off < threads && chunk.empty(); ++off) {
          WsQueue& victim =
              queues[static_cast<std::size_t>((widx + off) % threads)];
          std::lock_guard<std::mutex> lock(victim.mu);
          if (victim.items.empty()) continue;
          std::size_t take = std::min(kChunk, (victim.items.size() + 1) / 2);
          while (take-- > 0) {
            chunk.push_back(std::move(victim.items.front()));
            victim.items.pop_front();
          }
          ++w.steals;
          if (slot != nullptr) {
            slot->steals.fetch_add(1, std::memory_order_relaxed);
          }
        }
        if (chunk.empty()) ++w.steal_misses;
      }
      if (chunk.empty()) {
        if (in_flight.load(std::memory_order_acquire) == 0) break;
        std::this_thread::yield();
        continue;
      }
      // Work-chunk boundary: this engine's one lifecycle poll point
      // (max_levels is handled by depth_bound above, not here).
      if ((options.cancel != nullptr && options.cancel->cancelled()) ||
          deadline_passed(options.deadline)) {
        // The chunk's items (and everything still queued) simply stay
        // unexpanded; the trim pass finds the deepest complete level
        // regardless of where each worker stopped.
        stop.store(true, std::memory_order_relaxed);
        break;
      }
      if (slot != nullptr) slot->busy.store(1, std::memory_order_relaxed);
      const bool ok =
          w.ex.expand_chunk(std::span<WorkItem>(chunk), &w.sink, emit);
      w.expanded += chunk.size();
      in_flight.fetch_sub(static_cast<std::int64_t>(chunk.size()),
                          std::memory_order_acq_rel);
      // Chunk boundary: the engine's counter-drain cadence (it has no level
      // barriers); the final chunk's drain publishes the run totals.
      if (sym != nullptr) {
        add_canon_metrics(*w.ex.canon_scratch(), &canon_seen);
      }
      if (slot != nullptr) {
        // Work-chunk boundary: this engine's live-publication point. Nodes
        // go through raise() (concurrent absolute republications of
        // table.size() race; a stale smaller one must not un-publish) while
        // transitions accumulate per-worker pool deltas.
        slot->busy.store(0, std::memory_order_relaxed);
        slot->expanded.fetch_add(chunk.size(), std::memory_order_relaxed);
        const std::uint64_t cas_retries = w.ex.tally().cas_retries;
        slot->cas_retries.fetch_add(cas_retries - seen_cas_retries,
                                    std::memory_order_relaxed);
        seen_cas_retries = cas_retries;
        obs::Progress& p = obs::Progress::global();
        const std::uint64_t edges = w.sink.pool.size();
        p.transitions_total.fetch_add(edges - seen_edges,
                                      std::memory_order_relaxed);
        seen_edges = edges;
        obs::Progress::raise(p.nodes_total,
                             live.nodes_base + table.size() - prefix_nodes);
        const std::int64_t pending =
            in_flight.load(std::memory_order_relaxed);
        p.frontier_size.store(
            pending > 0 ? static_cast<std::uint64_t>(pending) : 0,
            std::memory_order_relaxed);
      }
      if (!ok) {
        exhausted.store(true, std::memory_order_relaxed);
        stop.store(true, std::memory_order_relaxed);
      }
    }
    worker_span.arg("expanded", static_cast<std::int64_t>(w.expanded));
  };

  std::vector<std::thread> pool;
  pool.reserve(static_cast<std::size_t>(threads));
  for (int t = 0; t < threads; ++t) pool.emplace_back(worker_main, t);
  for (std::thread& t : pool) t.join();

  BatchTable::Tally tally = seed_tally;
  std::uint64_t steals = 0;
  std::uint64_t steal_misses = 0;
  for (const ParallelWorker& w : workers) {
    tally += w.ex.tally();
    steals += w.steals;
    steal_misses += w.steal_misses;
  }
  add_intern_metrics(table, tally);
  if (obs::metrics_enabled()) {
    LBSA_OBS_COUNTER_ADD_V("explore.steal.count", steals);
    LBSA_OBS_COUNTER_ADD_V("explore.steal.failed", steal_misses);
  }

  if (exhausted.load()) {
    return resource_exhausted("explore: node budget exceeded (" +
                              std::to_string(options.max_nodes) + ")");
  }

  CanonicalBuild built = internal::GraphBuilder::build(
      table, workers, seed, options.resume, sym != nullptr,
      /*trust_depths=*/false, truncated.load(std::memory_order_relaxed),
      /*take_configs=*/true);
  const bool trimmed = internal::GraphBuilder::trim_to_complete_prefix(
      &built, seed.truncated);
  ConfigGraph graph = std::move(built.graph);
  if (trimmed) {
    if (!options.checkpoint_path.empty()) {
      const Status written = write_checkpoint(
          graph, graph.pending_frontier_, graph.levels_completed_,
          fingerprint, options, flag_fn != nullptr, initial_flag);
      if (!written.is_ok()) return written;
    }
  } else {
    graph.levels_completed_ =
        graph.nodes_.empty() ? 0 : graph.nodes_.back().depth + 1;
  }
  add_stable_counters(built, graph, seed, options.resume == nullptr,
                      trimmed ? graph.levels_completed_
                              : std::numeric_limits<std::uint32_t>::max());
  live.publish(graph.nodes_.size() - prefix_nodes,
               graph.transition_count() - seed.base_transitions,
               graph.levels_completed_, graph.pending_frontier_.size());
  record_graph_metrics(graph);
  return graph;
}

std::vector<sim::Step> ConfigGraph::path_to(std::uint32_t id) const {
  if (canonicalizer_ == nullptr) {
    std::vector<sim::Step> steps;
    std::uint32_t cur = id;
    while (cur != root()) {
      const auto& [parent, step] = parents_[cur];
      steps.push_back(step);
      cur = parent;
    }
    std::reverse(steps.begin(), steps.end());
    return steps;
  }

  // Symmetry-reduced graph: every recorded step acted in its parent's
  // *representative* space, so the raw parent chain is generally not an
  // execution of the protocol. Lift it: maintain σ, the renaming that maps
  // the concrete run being rebuilt onto the stored representative of the
  // current node (σ starts as the root's canonicalizing perm and composes
  // each node's discovery perm on the way down); a representative step by
  // pid r lifts to a concrete step by σ⁻¹(r) with the same outcome choice
  // (renaming maps outcome lists elementwise in order — see sim/symmetry.h).
  std::vector<std::uint32_t> chain;  // nodes after the root, in path order
  for (std::uint32_t cur = id; cur != root(); cur = parents_[cur].first) {
    chain.push_back(cur);
  }
  std::reverse(chain.begin(), chain.end());

  const sim::Protocol& protocol = *lift_protocol_;
  const int n = protocol.process_count();
  std::vector<int> sigma(static_cast<std::size_t>(n));
  for (int p = 0; p < n; ++p) sigma[static_cast<std::size_t>(p)] = p;
  auto compose = [&](const std::vector<std::uint8_t>& pi) {
    if (pi.empty()) return;  // identity
    for (int p = 0; p < n; ++p) {
      sigma[static_cast<std::size_t>(p)] = static_cast<int>(
          pi[static_cast<std::size_t>(sigma[static_cast<std::size_t>(p)])]);
    }
  };
  compose(discovery_perms_[root()]);

  sim::Config concrete = sim::initial_config(protocol);
  std::vector<sim::Step> steps;
  steps.reserve(chain.size());
  for (std::uint32_t v : chain) {
    const sim::Step& rep_step = parents_[v].second;
    int concrete_pid = -1;
    for (int p = 0; p < n; ++p) {
      if (sigma[static_cast<std::size_t>(p)] == rep_step.pid) {
        concrete_pid = p;
        break;
      }
    }
    LBSA_CHECK(concrete_pid >= 0);
    steps.push_back(sim::apply_step(protocol, &concrete, concrete_pid,
                                    rep_step.outcome_choice));
    compose(discovery_perms_[v]);
  }
  // Certify the lift: renaming the concrete endpoint by σ must reproduce
  // the stored representative bit for bit.
  sim::Config renamed = concrete;
  sim::apply_pid_permutation(protocol, sigma, &renamed);
  LBSA_CHECK_MSG(renamed == nodes_[static_cast<std::size_t>(id)].config,
                 "symmetry lift failed to land on the representative");
  return steps;
}

std::uint64_t ConfigGraph::full_node_estimate() const {
  if (canonicalizer_ == nullptr) {
    return static_cast<std::uint64_t>(nodes_.size());
  }
  std::uint64_t total = 0;
  for (const Node& node : nodes_) {
    total += canonicalizer_->orbit_size(node.config);
  }
  return total;
}

const char* reduction_name(Reduction reduction) {
  switch (reduction) {
    case Reduction::kNone:
      return "none";
    case Reduction::kSymmetry:
      return "symmetry";
    case Reduction::kPor:
      return "por";
    case Reduction::kBoth:
      return "both";
  }
  return "none";
}

StatusOr<Reduction> parse_reduction(const std::string& name) {
  if (name == "none") return Reduction::kNone;
  if (name == "symmetry") return Reduction::kSymmetry;
  if (name == "por") return Reduction::kPor;
  if (name == "both") return Reduction::kBoth;
  return invalid_argument("unknown reduction '" + name +
                          "' (known: none, symmetry, por, both)");
}

const char* engine_name(ExploreEngine engine) {
  switch (engine) {
    case ExploreEngine::kAuto:
      return "auto";
    case ExploreEngine::kSerial:
      return "serial";
    case ExploreEngine::kParallel:
      return "parallel";
    case ExploreEngine::kWorkStealing:
      return "workstealing";
  }
  return "auto";
}

StatusOr<ExploreEngine> parse_engine(const std::string& name) {
  if (name == "auto") return ExploreEngine::kAuto;
  if (name == "serial") return ExploreEngine::kSerial;
  if (name == "parallel") return ExploreEngine::kParallel;
  if (name == "workstealing") return ExploreEngine::kWorkStealing;
  return invalid_argument(
      "unknown engine '" + name +
      "' (known: auto, serial, parallel, workstealing)");
}

StatusOr<ConfigGraph> Explorer::explore(const ExploreOptions& options,
                                        FlagFn flag_fn,
                                        std::int64_t initial_flag) const {
  const int threads = resolve_threads(options);
  if (options.engine == ExploreEngine::kWorkStealing &&
      options.checkpoint_every_levels > 0) {
    return invalid_argument(
        "explore: the work-stealing engine has no level boundaries and "
        "cannot honor checkpoint_every_levels; use engine=parallel (or "
        "auto) for periodic checkpoints");
  }

  const bool want_sym = options.reduction == Reduction::kSymmetry ||
                        options.reduction == Reduction::kBoth;
  const bool por = options.reduction == Reduction::kPor ||
                   options.reduction == Reduction::kBoth;
  std::shared_ptr<const sim::Canonicalizer> sym;
  if (want_sym) {
    sim::SymmetrySpec spec = protocol_->symmetry();
    if (!spec.trivial()) {
      if (flag_fn && !options.flag_fn_symmetric) {
        return invalid_argument(
            "explore: flag function combined with symmetry reduction on a "
            "protocol with a non-trivial symmetry group; declare invariance "
            "via ExploreOptions::flag_fn_symmetric or drop to "
            "reduction=none/por");
      }
      // Reuse a caller-built canonicalizer (the hierarchy sweep shares one
      // per cell, with its precomputed group and orbit tables) only when it
      // was built for this exact protocol instance — the contract on
      // ExploreOptions::canonicalizer. Anything else falls back to a fresh
      // build.
      if (options.canonicalizer != nullptr &&
          options.canonicalizer->protocol().get() == protocol_.get()) {
        sym = options.canonicalizer;
      } else {
        sym = std::make_shared<const sim::Canonicalizer>(protocol_,
                                                         std::move(spec));
      }
      LBSA_OBS_GAUGE_MAX("explore.sym.group_size",
                         static_cast<std::int64_t>(sym->group_size()));
    }
  }

  const std::uint64_t fingerprint = explore_fingerprint(
      *protocol_, options, flag_fn != nullptr, initial_flag);
  if (options.resume != nullptr) {
    const ExploreCheckpoint& cp = *options.resume;
    if (cp.fingerprint != fingerprint) {
      const std::string suffix =
          cp.task_label.empty() ? std::string()
                                : " (checkpoint task: '" + cp.task_label + "')";
      // Name the mismatched knob when an echoed parameter disagrees; fall
      // back to the generic fingerprint message (different protocol/task).
      if (cp.reduction != options.reduction) {
        return failed_precondition(
            std::string("resume: checkpoint was written under reduction '") +
            reduction_name(cp.reduction) + "', this run requests '" +
            reduction_name(options.reduction) + "'" + suffix);
      }
      if (cp.max_nodes != options.max_nodes) {
        return failed_precondition(
            "resume: checkpoint node budget " + std::to_string(cp.max_nodes) +
            " does not match requested " + std::to_string(options.max_nodes) +
            suffix);
      }
      if (cp.allow_truncation != options.allow_truncation) {
        return failed_precondition(
            "resume: checkpoint allow_truncation disagrees with this run" +
            suffix);
      }
      if (cp.has_flag_fn != (flag_fn != nullptr)) {
        return failed_precondition(
            std::string("resume: checkpoint was written ") +
            (cp.has_flag_fn ? "with" : "without") +
            " a path-flag function, this run is the opposite" + suffix);
      }
      if (cp.initial_flag != initial_flag) {
        return failed_precondition(
            "resume: checkpoint initial flag " +
            std::to_string(cp.initial_flag) + " does not match requested " +
            std::to_string(initial_flag) + suffix);
      }
      return failed_precondition(
          "resume: checkpoint fingerprint mismatch — written for a "
          "different protocol/task or option set" +
          suffix);
    }
    if (cp.node_words.empty()) {
      return invalid_argument("resume: checkpoint has no nodes");
    }
    if ((sym != nullptr) != !cp.discovery_perms.empty()) {
      return invalid_argument(
          "resume: checkpoint discovery permutations disagree with the "
          "active symmetry reduction");
    }
    for (std::uint32_t id : cp.frontier) {
      if (cp.node_depths[id] != cp.levels_completed) {
        return invalid_argument(
            "resume: frontier node depth disagrees with levels_completed");
      }
    }
  }

  LBSA_OBS_COUNTER_ADD("explore.runs", 1);
  LBSA_OBS_SPAN(run_span, "explore.run", obs::kCatTask, /*lane=*/0);

  // Effective options for the engines: install a private orbit-cache pool
  // when symmetry is on and the caller did not share one. The pool only
  // accelerates canonical_encode_into — it never shapes the graph — so it
  // deliberately stays outside the fingerprint. Small groups are exempt:
  // below ~64 elements the pruned scan is already cheaper than hashing the
  // raw encoding plus the hit-verify memcmp, so a cache is pure overhead
  // (measured on dac5-sym, group 24). Callers that pass an explicit pool —
  // the hierarchy sweep, the equivalence tests — are always honored.
  constexpr std::size_t kCanonCacheMinGroup = 64;
  ExploreOptions opts = options;
  if (sym != nullptr && opts.canon_cache_pool == nullptr &&
      opts.canon_cache_bytes > 0 &&
      sym->group_size() >= kCanonCacheMinGroup) {
    opts.canon_cache_pool =
        std::make_shared<sim::CanonCachePool>(opts.canon_cache_bytes);
  }

  ExploreEngine used = options.engine;
  bool auto_switched = false;
  StatusOr<ConfigGraph> result = [&]() -> StatusOr<ConfigGraph> {
    switch (opts.engine) {
      case ExploreEngine::kSerial:
        return explore_serial(opts, flag_fn, initial_flag, sym.get(), por,
                              fingerprint);
      case ExploreEngine::kParallel:
        return explore_parallel(opts, threads, flag_fn, initial_flag,
                                sym.get(), por, fingerprint);
      case ExploreEngine::kWorkStealing:
        return explore_work_stealing(opts, threads, flag_fn, initial_flag,
                                     sym.get(), por, fingerprint);
      case ExploreEngine::kAuto:
        break;
    }
    // kAuto. One thread: nothing to hand off to.
    if (threads <= 1) {
      used = ExploreEngine::kSerial;
      return explore_serial(opts, flag_fn, initial_flag, sym.get(), por,
                            fingerprint);
    }
    // Periodic checkpoint cadence is defined by level boundaries, which
    // only the level-synchronous engine has end to end.
    if (opts.checkpoint_every_levels > 0) {
      used = ExploreEngine::kParallel;
      return explore_parallel(opts, threads, flag_fn, initial_flag,
                              sym.get(), por, fingerprint);
    }
    // Serial probe: small graphs finish right here with zero parallel
    // overhead; big ones hand their canonical prefix to a parallel engine
    // through an in-memory checkpoint.
    bool switched = false;
    auto probe = explore_serial(opts, flag_fn, initial_flag, sym.get(),
                                por, fingerprint, kAutoSwitchNodes, &switched);
    if (!probe.is_ok() || !switched) {
      used = ExploreEngine::kSerial;
      return probe;
    }
    auto_switched = true;
    LBSA_OBS_COUNTER_ADD_V("explore.auto.switches", 1);
    const ConfigGraph& prefix = probe.value();
    const std::uint32_t probe_levels =
        prefix.levels_completed() -
        (options.resume != nullptr ? options.resume->levels_completed : 0);
    const ExploreCheckpoint handoff = checkpoint_from_graph(
        prefix, prefix.pending_frontier(), prefix.levels_completed(),
        fingerprint, options, flag_fn != nullptr, initial_flag);
    // The continuation inherits `opts`, pool included: the probe warmed
    // worker 0's cache and the parallel engine's worker 0 picks it up.
    ExploreOptions cont = opts;
    cont.resume = &handoff;
    // stop_reason() fires before the switch check, so when max_levels is
    // set the probe stopped strictly short of it: remaining >= 1.
    if (options.max_levels > 0) cont.max_levels -= probe_levels;
    if (prefix.pending_frontier().size() >=
        kAutoWideFrontier * static_cast<std::size_t>(threads)) {
      used = ExploreEngine::kParallel;
      return explore_parallel(cont, threads, flag_fn, initial_flag, sym.get(),
                              por, fingerprint);
    }
    used = ExploreEngine::kWorkStealing;
    return explore_work_stealing(cont, threads, flag_fn, initial_flag,
                                 sym.get(), por, fingerprint);
  }();

  if (result.is_ok()) {
    ConfigGraph& graph = result.value();
    graph.reduction_ = options.reduction;
    graph.engine_used_ = used;
    graph.auto_switched_ = auto_switched;
    graph.canonicalizer_ = std::move(sym);
    graph.lift_protocol_ = protocol_;
  }
  return result;
}

}  // namespace lbsa::modelcheck
