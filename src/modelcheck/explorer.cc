#include "modelcheck/explorer.h"

#include <algorithm>
#include <atomic>
#include <barrier>
#include <deque>
#include <span>
#include <string>
#include <thread>
#include <utility>

#include "base/check.h"
#include "base/hashing.h"
#include "modelcheck/checkpoint.h"
#include "modelcheck/interning.h"
#include "obs/obs.h"

namespace lbsa::modelcheck {
namespace {

struct KeyHash {
  std::size_t operator()(const std::vector<std::int64_t>& key) const {
    return static_cast<std::size_t>(hash_words(key));
  }
};

int resolve_threads(const ExploreOptions& options) {
  if (options.threads > 0) return options.threads;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

// Partial-order reduction's ample-set selector: the smallest enabled
// process whose next action is a deterministic, purely-local step (decide /
// abort — touches no shared object) and, when a path flag is folded along
// edges, leaves the flag unchanged (the visibility proviso: a flag-changing
// step may not be prioritized, or flag-distinguished histories would be
// lost). Returns -1 when no such process exists and the node must be fully
// expanded. Pure function of (config, flag), so both engines agree and
// reduced graphs stay deterministic. The cycle proviso is structural: an
// ample step strictly shrinks the enabled set, so no cycle consists of
// ample-reduced nodes.
int select_ample_pid(const sim::Protocol& protocol, const sim::Config& config,
                     std::int64_t flag, const Explorer::FlagFn& flag_fn) {
  const int n = static_cast<int>(config.procs.size());
  for (int pid = 0; pid < n; ++pid) {
    if (!config.enabled(pid)) continue;
    const sim::Action action =
        protocol.next_action(pid, config.procs[static_cast<std::size_t>(pid)]);
    if (action.kind == sim::Action::Kind::kInvoke) continue;
    if (flag_fn) {
      // Probe with the exact Step enumerate_successors() would emit for
      // this local action.
      const sim::Step probe{pid, action, kNil, 0};
      if (flag_fn(flag, probe) != flag) continue;
    }
    return pid;
  }
  return -1;
}

// End-of-run level statistics, derived from the canonical graph so both
// engines report byte-identical values: one frontier-size observation per
// BFS level, the level count, and the maximum depth.
void record_graph_metrics(const ConfigGraph& graph) {
  if (!obs::metrics_enabled()) return;
  std::vector<std::uint64_t> level_sizes;
  for (const Node& node : graph.nodes()) {
    if (node.depth >= level_sizes.size()) level_sizes.resize(node.depth + 1, 0);
    ++level_sizes[node.depth];
  }
  for (std::uint64_t size : level_sizes) {
    LBSA_OBS_HISTOGRAM_OBSERVE("explore.frontier_size", size);
  }
  LBSA_OBS_COUNTER_ADD("explore.levels", level_sizes.size());
  if (!level_sizes.empty()) {
    LBSA_OBS_GAUGE_MAX("explore.max_depth", level_sizes.size() - 1);
  }
}

// Why a run stopped at a level boundary, if it should.
enum class StopReason { kNone, kCancelled, kDeadline, kMaxLevels };

StopReason stop_reason(const ExploreOptions& options,
                       std::uint32_t session_levels) {
  if (options.cancel != nullptr && options.cancel->cancelled()) {
    return StopReason::kCancelled;
  }
  if (deadline_passed(options.deadline)) return StopReason::kDeadline;
  if (options.max_levels > 0 && session_levels >= options.max_levels) {
    return StopReason::kMaxLevels;
  }
  return StopReason::kNone;
}

// Rebuilds every checkpointed configuration from its word encoding, or the
// first decode error (checksummed files make this near-impossible to hit,
// but a hand-edited checkpoint must fail cleanly, not crash).
StatusOr<std::vector<sim::Config>> decode_checkpoint_configs(
    const ExploreCheckpoint& cp) {
  std::vector<sim::Config> configs;
  configs.reserve(cp.node_words.size());
  for (const auto& words : cp.node_words) {
    auto config = sim::decode_config(words);
    if (!config.is_ok()) return config.status();
    configs.push_back(std::move(config).value());
  }
  return configs;
}

// Snapshot of a paused exploration (graph at a level boundary + the pending
// frontier), ready for write_explore_checkpoint().
ExploreCheckpoint checkpoint_from_graph(const ConfigGraph& graph,
                                        std::span<const std::uint32_t> frontier,
                                        std::uint32_t levels_completed,
                                        std::uint64_t fingerprint,
                                        const ExploreOptions& options,
                                        bool has_flag_fn,
                                        std::int64_t initial_flag) {
  ExploreCheckpoint cp;
  cp.fingerprint = fingerprint;
  cp.task_label = options.checkpoint_label;
  cp.reduction = options.reduction;
  cp.initial_flag = initial_flag;
  cp.has_flag_fn = has_flag_fn;
  cp.max_nodes = options.max_nodes;
  cp.allow_truncation = options.allow_truncation;
  cp.truncated = graph.truncated();
  cp.transition_count = graph.transition_count();
  cp.levels_completed = levels_completed;
  const std::size_t n = graph.nodes().size();
  cp.node_words.reserve(n);
  cp.node_flags.reserve(n);
  cp.node_depths.reserve(n);
  cp.parents.reserve(n);
  cp.parent_steps.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const Node& node = graph.nodes()[i];
    cp.node_words.push_back(node.config.encode());
    cp.node_flags.push_back(node.flag);
    cp.node_depths.push_back(node.depth);
    cp.parents.push_back(graph.parents()[i].first);
    cp.parent_steps.push_back(graph.parents()[i].second);
  }
  cp.discovery_perms = graph.discovery_perms();
  cp.edges = graph.edges();
  cp.frontier.assign(frontier.begin(), frontier.end());
  return cp;
}

Status write_checkpoint(const ConfigGraph& graph,
                        std::span<const std::uint32_t> frontier,
                        std::uint32_t levels_completed,
                        std::uint64_t fingerprint,
                        const ExploreOptions& options, bool has_flag_fn,
                        std::int64_t initial_flag) {
  LBSA_OBS_COUNTER_ADD_V("explore.checkpoint.writes", 1);
  return write_explore_checkpoint(
      checkpoint_from_graph(graph, frontier, levels_completed, fingerprint,
                            options, has_flag_fn, initial_flag),
      options.checkpoint_path);
}

// ---------------------------------------------------------------------------
// Serial reference engine. This is the semantic definition of the canonical
// graph: node ids in BFS discovery order (frontier in id order; within a
// node, pids ascending, then outcome order), parents_ from the discovering
// edge, depths from level-synchronous discovery. The parallel engine below
// must reproduce its output bit for bit on complete explorations.
// ---------------------------------------------------------------------------
}  // namespace

StatusOr<ConfigGraph> Explorer::explore_serial(const ExploreOptions& options,
                                               const FlagFn& flag_fn,
                                               std::int64_t initial_flag,
                                               const sim::Canonicalizer* sym,
                                               bool por,
                                               std::uint64_t fingerprint) const {
  const sim::Protocol& protocol = *protocol_;
  ConfigGraph graph;
  std::unordered_map<std::vector<std::int64_t>, std::uint32_t, KeyHash> index;

  // Reused scratch: the encoded key only lands in the map on insertion.
  std::vector<std::int64_t> key;
  std::vector<std::uint8_t> perm;
  auto intern = [&](sim::Config config, std::int64_t flag,
                    std::uint32_t parent, const sim::Step& step,
                    std::uint32_t depth) -> std::pair<std::uint32_t, bool> {
    if (sym != nullptr) {
      sym->canonical_encode_into(config, &key, &perm);
      if (!perm.empty()) LBSA_OBS_COUNTER_ADD("explore.sym.renamed", 1);
    } else {
      config.encode_into(&key);
    }
    key.push_back(flag);
    auto [it, inserted] =
        index.try_emplace(key, static_cast<std::uint32_t>(graph.nodes_.size()));
    if (inserted) {
      LBSA_OBS_COUNTER_ADD("explore.nodes", 1);
      if (sym != nullptr && !perm.empty()) {
        const std::vector<int> as_int(perm.begin(), perm.end());
        sim::apply_pid_permutation(protocol, as_int, &config);
      }
      graph.nodes_.push_back(Node{std::move(config), flag, depth});
      graph.edges_.emplace_back();
      graph.parents_.emplace_back(parent, step);
      if (sym != nullptr) graph.discovery_perms_.push_back(perm);
    }
    return {it->second, inserted};
  };

  std::deque<std::uint32_t> frontier;
  std::uint32_t start_depth = 0;
  if (options.resume != nullptr) {
    // Seed the canonical prefix directly (NOT through intern(): resumed
    // nodes must not re-bump explore.nodes — the counters describe work done
    // this session). The checkpoint stores representatives, so plain
    // encoding reproduces the intern keys even under symmetry reduction.
    const ExploreCheckpoint& cp = *options.resume;
    auto configs = decode_checkpoint_configs(cp);
    if (!configs.is_ok()) return configs.status();
    const std::size_t n = configs.value().size();
    graph.nodes_.reserve(n);
    std::vector<std::int64_t> seed_key;
    for (std::size_t i = 0; i < n; ++i) {
      sim::Config& config = configs.value()[i];
      config.encode_into(&seed_key);
      seed_key.push_back(cp.node_flags[i]);
      const bool fresh =
          index.try_emplace(seed_key, static_cast<std::uint32_t>(i)).second;
      if (!fresh) return invalid_argument("resume: duplicate checkpoint node");
      graph.nodes_.push_back(
          Node{std::move(config), cp.node_flags[i], cp.node_depths[i]});
      graph.parents_.emplace_back(cp.parents[i], cp.parent_steps[i]);
    }
    graph.edges_ = cp.edges;
    graph.discovery_perms_ = cp.discovery_perms;
    graph.transition_count_ = cp.transition_count;
    graph.truncated_ = cp.truncated;
    frontier.assign(cp.frontier.begin(), cp.frontier.end());
    start_depth = cp.levels_completed;
  } else {
    sim::Config init = sim::initial_config(protocol);
    intern(std::move(init), initial_flag, 0, sim::Step{}, 0);
    frontier.push_back(0);
  }

  // One "explore.level" phase event per BFS level. The frontier is a FIFO,
  // so popped depths are non-decreasing and a depth change marks a level
  // boundary — matching the parallel engine's one-span-per-level exactly.
  bool level_open = false;
  std::uint64_t level_start_us = 0;
  std::uint32_t span_depth = 0;
  std::uint64_t span_nodes = 0;
  auto close_level_span = [&] {
    if (!level_open) return;
    level_open = false;
    obs::TraceEvent event;
    event.name = "explore.level";
    event.cat = obs::kCatPhase;
    event.lane = 0;
    event.ts_us = level_start_us;
    const std::uint64_t now = obs::trace_now_us();
    event.dur_us = now >= level_start_us ? now - level_start_us : 0;
    event.args.emplace_back("level", span_depth);
    event.args.emplace_back("nodes", static_cast<std::int64_t>(span_nodes));
    obs::Tracer::global().record(std::move(event));
  };
  auto open_level_span = [&](std::uint32_t d) {
    span_depth = d;
    span_nodes = 0;
    if (!obs::tracing_enabled()) return;
    level_open = true;
    level_start_us = obs::trace_now_us();
  };
  open_level_span(start_depth);

  std::vector<sim::Successor> successors;
  while (!frontier.empty()) {
    const std::uint32_t id = frontier.front();
    const std::uint32_t depth = graph.nodes_[id].depth;

    if (depth != span_depth) {
      close_level_span();
      // Level boundary: every node of depth < `depth` is expanded, and the
      // deque holds exactly the depth-`depth` nodes in ascending id order —
      // the one state a checkpoint can represent and a resume can
      // reproduce. All lifecycle actions happen here and only here.
      const std::uint32_t session_levels = depth - start_depth;
      if (stop_reason(options, session_levels) != StopReason::kNone) {
        graph.interrupted_ = true;
        graph.levels_completed_ = depth;
        graph.pending_frontier_.assign(frontier.begin(), frontier.end());
        if (!options.checkpoint_path.empty()) {
          const Status written = write_checkpoint(
              graph, graph.pending_frontier_, depth, fingerprint, options,
              flag_fn != nullptr, initial_flag);
          if (!written.is_ok()) return written;
        }
        break;
      }
      if (!options.checkpoint_path.empty() &&
          options.checkpoint_every_levels > 0 && session_levels > 0 &&
          session_levels % options.checkpoint_every_levels == 0) {
        const std::vector<std::uint32_t> pending(frontier.begin(),
                                                 frontier.end());
        const Status written =
            write_checkpoint(graph, pending, depth, fingerprint, options,
                             flag_fn != nullptr, initial_flag);
        if (!written.is_ok()) return written;
      }
      open_level_span(depth);
    }
    frontier.pop_front();
    // Copy what we need: intern() may reallocate nodes_.
    const sim::Config config = graph.nodes_[id].config;
    const std::int64_t flag = graph.nodes_[id].flag;
    ++span_nodes;

    const int ample =
        por ? select_ample_pid(protocol, config, flag, flag_fn) : -1;
    if (ample >= 0) {
      LBSA_OBS_COUNTER_ADD("explore.por.skips", config.enabled_count() - 1);
    }
    const int n = static_cast<int>(config.procs.size());
    for (int pid = 0; pid < n; ++pid) {
      if (!config.enabled(pid)) continue;
      if (ample >= 0 && pid != ample) continue;
      successors.clear();
      sim::enumerate_successors(protocol, config, pid, &successors);
      for (sim::Successor& succ : successors) {
        const std::int64_t next_flag =
            flag_fn ? flag_fn(flag, succ.step) : flag;
        auto [to, inserted] = intern(std::move(succ.config), next_flag, id,
                                     succ.step, depth + 1);
        graph.edges_[id].push_back(
            Edge{to, pid, succ.step.action.kind});
        ++graph.transition_count_;
        LBSA_OBS_COUNTER_ADD("explore.transitions", 1);
        if (inserted) {
          if (graph.nodes_.size() > options.max_nodes) {
            if (!options.allow_truncation) {
              return resource_exhausted(
                  "explore: node budget exceeded (" +
                  std::to_string(options.max_nodes) + ")");
            }
            // Truncation invariant: the over-budget node was already pushed
            // into nodes_/edges_/parents_ by intern(), so the edge we just
            // emitted has a valid target and path_to(to) replays — the node
            // is KEPT but (by skipping the frontier push) never expanded.
            graph.truncated_ = true;
            continue;
          }
          frontier.push_back(to);
        }
      }
    }
  }
  close_level_span();
  if (!graph.interrupted_) {
    graph.levels_completed_ =
        graph.nodes_.empty() ? 0 : graph.nodes_.back().depth + 1;
  }
  LBSA_CHECK(graph.nodes_.size() == graph.edges_.size() &&
             graph.nodes_.size() == graph.parents_.size());
  record_graph_metrics(graph);
  return graph;
}

// ---------------------------------------------------------------------------
// Parallel engine: level-synchronous BFS over a work pool.
//
// Determinism recipe (complete graphs are bit-identical to explore_serial):
//   1. Levels are processed with a barrier in between, so a node's depth is
//      exactly its BFS distance no matter which thread discovers it.
//   2. Each frontier node is expanded by exactly one worker, which emits its
//      RawEdge list in the canonical within-node order (pids ascending,
//      outcomes in enumeration order). Provisional ids from the sharded
//      intern table are schedule-dependent, but the edge *lists* are not.
//   3. A final single-threaded renumbering pass replays the canonical BFS
//      over the provisional graph: walking nodes in canonical id order and
//      each edge list in order, first-touch assigns canonical ids — which
//      reproduces the serial discovery order, parents and all.
// ---------------------------------------------------------------------------

namespace {

// Payload stored per interned (config, flag) node.
struct NodePayload {
  sim::Config config;
  std::int64_t flag = 0;
  std::uint32_t depth = 0;
};

// An emitted transition, pre-renumbering: target is a provisional id and the
// full Step is kept so the renumbering pass can rebuild parents_. Under
// symmetry reduction, perm records the canonicalizing permutation of this
// edge's successor (empty = identity); the renumbering pass installs the
// first-touch edge's perm as the node's discovery perm, which keeps
// discovery_perms_ aligned with the canonical parents_ no matter which
// worker interned the node first.
struct RawEdge {
  std::uint32_t to = 0;
  sim::Step step;
  std::vector<std::uint8_t> perm;
};

// A frontier entry. Carries its own copy of the configuration so workers
// never read the intern table's payload store while other workers insert
// into it (payload reads happen only after full quiescence).
struct WorkItem {
  std::uint32_t id = 0;  // provisional id
  sim::Config config;
  std::int64_t flag = 0;
};

struct WorkerOutput {
  std::vector<WorkItem> next;  // discoveries for the next level
  std::vector<std::pair<std::uint32_t, std::vector<RawEdge>>> edges;
  std::uint64_t transitions = 0;
};

constexpr std::uint32_t kUnassigned = 0xffffffffu;
constexpr std::size_t kChunk = 16;  // frontier items claimed per steal

}  // namespace

StatusOr<ConfigGraph> Explorer::explore_parallel(
    const ExploreOptions& options, int threads, const FlagFn& flag_fn,
    std::int64_t initial_flag, const sim::Canonicalizer* sym, bool por,
    std::uint64_t fingerprint) const {
  const sim::Protocol& protocol = *protocol_;
  ShardedInternTable<NodePayload> table;
  std::atomic<bool> exhausted{false};  // budget hit, truncation not allowed
  std::atomic<bool> truncated{false};

  const ExploreCheckpoint* resume = options.resume;
  std::vector<WorkItem> frontier;
  std::uint32_t start_depth = 0;
  std::uint32_t root_id = 0;
  std::vector<std::uint8_t> root_perm;
  // Resume only: prefix_prov[i] is the provisional id the fresh table
  // assigned to canonical checkpoint node i. The renumbering walk below is
  // seeded with this prefix, so session discoveries continue the canonical
  // numbering exactly where the checkpoint left off.
  std::vector<std::uint32_t> prefix_prov;

  if (resume != nullptr) {
    auto configs_or = decode_checkpoint_configs(*resume);
    if (!configs_or.is_ok()) return configs_or.status();
    std::vector<sim::Config>& configs = configs_or.value();
    const std::size_t n = configs.size();
    prefix_prov.reserve(n);
    std::vector<std::int64_t> seed_key;
    for (std::size_t i = 0; i < n; ++i) {
      configs[i].encode_into(&seed_key);
      seed_key.push_back(resume->node_flags[i]);
      sim::Config copy = configs[i];
      const auto res = table.intern(seed_key, [&] {
        return NodePayload{std::move(copy), resume->node_flags[i],
                           resume->node_depths[i]};
      });
      if (!res.inserted) {
        return invalid_argument("resume: duplicate checkpoint node");
      }
      prefix_prov.push_back(res.id);
    }
    frontier.reserve(resume->frontier.size());
    for (std::uint32_t id : resume->frontier) {
      frontier.push_back(WorkItem{prefix_prov[id], std::move(configs[id]),
                                  resume->node_flags[id]});
    }
    start_depth = resume->levels_completed;
    truncated.store(resume->truncated, std::memory_order_relaxed);
  } else {
    sim::Config init = sim::initial_config(protocol);
    if (sym != nullptr) {
      sym->canonicalize(&init, &root_perm);
      if (!root_perm.empty()) LBSA_OBS_COUNTER_ADD("explore.sym.renamed", 1);
    }
    std::vector<std::int64_t> root_key;
    init.encode_into(&root_key);
    root_key.push_back(initial_flag);
    sim::Config root_copy = init;
    root_id = table.intern(root_key, [&] {
                     return NodePayload{std::move(root_copy), initial_flag, 0};
                   }).id;
    LBSA_OBS_COUNTER_ADD("explore.nodes", 1);
    frontier.push_back(WorkItem{root_id, std::move(init), initial_flag});
  }

  if (obs::tracing_enabled()) {
    obs::Tracer::global().set_lane_name(0, "coordinator");
    for (int t = 0; t < threads; ++t) {
      obs::Tracer::global().set_lane_name(t + 1,
                                          "worker " + std::to_string(t));
    }
  }

  std::vector<WorkerOutput> outputs(static_cast<std::size_t>(threads));
  std::atomic<std::size_t> cursor{0};
  std::uint32_t depth = start_depth;  // depth of the level currently expanding
  std::atomic<bool> done{false};

  std::barrier<> level_start(threads + 1);
  std::barrier<> level_end(threads + 1);

  auto worker = [&](int widx) {
    // Thread-local scratch, reused across every expansion.
    std::vector<sim::Successor> successors;
    std::vector<std::int64_t> key;
    std::vector<std::uint8_t> perm;
    WorkerOutput& out = outputs[static_cast<std::size_t>(widx)];
    while (true) {
      level_start.arrive_and_wait();
      if (done.load(std::memory_order_acquire)) return;
      // Per-worker-thread lane; "worker" events scale with the pool size and
      // are excluded from trace-count determinism comparisons.
      obs::Span worker_span("explore.worker", obs::kCatWorker, widx + 1);
      std::uint64_t expanded = 0;
      while (!exhausted.load(std::memory_order_relaxed)) {
        const std::size_t begin =
            cursor.fetch_add(kChunk, std::memory_order_relaxed);
        if (begin >= frontier.size()) break;
        const std::size_t end = std::min(frontier.size(), begin + kChunk);
        for (std::size_t i = begin;
             i < end && !exhausted.load(std::memory_order_relaxed); ++i) {
          ++expanded;
          WorkItem& item = frontier[i];
          std::vector<RawEdge> raw;
          const int ample =
              por ? select_ample_pid(protocol, item.config, item.flag, flag_fn)
                  : -1;
          if (ample >= 0) {
            LBSA_OBS_COUNTER_ADD("explore.por.skips",
                                 item.config.enabled_count() - 1);
          }
          const int n = static_cast<int>(item.config.procs.size());
          for (int pid = 0; pid < n; ++pid) {
            if (!item.config.enabled(pid)) continue;
            if (ample >= 0 && pid != ample) continue;
            successors.clear();
            sim::enumerate_successors(protocol, item.config, pid,
                                      &successors);
            for (sim::Successor& succ : successors) {
              const std::int64_t next_flag =
                  flag_fn ? flag_fn(item.flag, succ.step) : item.flag;
              if (sym != nullptr) {
                sym->canonical_encode_into(succ.config, &key, &perm);
                if (!perm.empty()) {
                  LBSA_OBS_COUNTER_ADD("explore.sym.renamed", 1);
                  // Store (and later expand) the representative, never the
                  // raw successor: expansion must be a pure function of the
                  // interned configuration.
                  const std::vector<int> as_int(perm.begin(), perm.end());
                  sim::apply_pid_permutation(protocol, as_int, &succ.config);
                }
              } else {
                succ.config.encode_into(&key);
              }
              key.push_back(next_flag);
              const auto res = table.intern(key, [&] {
                return NodePayload{succ.config, next_flag, depth + 1};
              });
              raw.push_back(RawEdge{res.id, succ.step, perm});
              ++out.transitions;
              LBSA_OBS_COUNTER_ADD("explore.transitions", 1);
              if (!res.inserted) continue;
              LBSA_OBS_COUNTER_ADD("explore.nodes", 1);
              if (table.size() > options.max_nodes) {
                if (!options.allow_truncation) {
                  exhausted.store(true, std::memory_order_relaxed);
                  break;
                }
                // Keep the node (its edge is already recorded) but never
                // expand it; see the truncation soundness note in the
                // ExploreOptions docs.
                truncated.store(true, std::memory_order_relaxed);
                continue;
              }
              out.next.push_back(
                  WorkItem{res.id, std::move(succ.config), next_flag});
            }
          }
          out.edges.emplace_back(item.id, std::move(raw));
        }
      }
      worker_span.arg("expanded", static_cast<std::int64_t>(expanded));
      level_end.arrive_and_wait();
    }
  };

  std::vector<std::thread> pool;
  pool.reserve(static_cast<std::size_t>(threads));
  for (int t = 0; t < threads; ++t) pool.emplace_back(worker, t);

  std::vector<std::pair<std::uint32_t, std::vector<RawEdge>>> all_edges;
  std::uint64_t transition_count = resume != nullptr ? resume->transition_count : 0;

  // Canonical renumbering walk, runnable at any level boundary (workers
  // quiescent). final_pass moves configurations out of the intern table and
  // so may run only once, as the last act; the copy-mode variant backs the
  // periodic checkpoints. canon_out maps provisional id -> canonical id.
  auto build_graph = [&](bool final_pass,
                         std::vector<std::uint32_t>* canon_out) -> ConfigGraph {
    const std::uint32_t bound = table.id_bound();
    std::vector<const std::vector<RawEdge>*> raw(bound, nullptr);
    for (const auto& [id, edges] : all_edges) raw[id] = &edges;

    ConfigGraph graph;
    graph.truncated_ = truncated.load(std::memory_order_relaxed);
    graph.transition_count_ = transition_count;
    const std::size_t total = static_cast<std::size_t>(table.size());
    graph.nodes_.reserve(total);
    graph.edges_.reserve(total);
    graph.parents_.reserve(total);

    std::vector<std::uint32_t>& canon = *canon_out;
    canon.assign(bound, kUnassigned);
    std::vector<std::uint32_t> order;  // canonical BFS queue (provisional ids)
    order.reserve(total);
    if (resume != nullptr) {
      // The checkpointed prefix IS the canonical prefix: re-seat it
      // verbatim, then let first-touch discovery number this session's
      // nodes — it continues the serial numbering exactly (frontier nodes
      // sit in the prefix, their session edges are walked in canonical
      // order below).
      const std::size_t n = prefix_prov.size();
      for (std::size_t i = 0; i < n; ++i) {
        canon[prefix_prov[i]] = static_cast<std::uint32_t>(i);
        order.push_back(prefix_prov[i]);
        NodePayload& p = table.payload(prefix_prov[i]);
        graph.nodes_.push_back(
            Node{final_pass ? std::move(p.config) : p.config, p.flag,
                 p.depth});
        graph.parents_.emplace_back(resume->parents[i],
                                    resume->parent_steps[i]);
      }
      graph.edges_ = resume->edges;
      graph.discovery_perms_ = resume->discovery_perms;
    } else {
      NodePayload& p = table.payload(root_id);
      canon[root_id] = 0;
      order.push_back(root_id);
      graph.nodes_.push_back(
          Node{final_pass ? std::move(p.config) : p.config, p.flag, 0});
      graph.edges_.emplace_back();
      graph.parents_.emplace_back(0, sim::Step{});
      if (sym != nullptr) {
        graph.discovery_perms_.push_back(
            final_pass ? std::move(root_perm) : root_perm);
      }
    }
    for (std::size_t i = 0; i < order.size(); ++i) {
      const std::uint32_t u = order[i];
      const std::uint32_t cu = static_cast<std::uint32_t>(i);
      if (raw[u] == nullptr) continue;  // not expanded (this session)
      for (const RawEdge& e : *raw[u]) {
        if (canon[e.to] == kUnassigned) {
          canon[e.to] = static_cast<std::uint32_t>(graph.nodes_.size());
          NodePayload& p = table.payload(e.to);
          // Level-synchronous discovery makes stored depths exact; the
          // canonical parent is one level up by construction.
          LBSA_CHECK(p.depth == graph.nodes_[cu].depth + 1);
          graph.nodes_.push_back(
              Node{final_pass ? std::move(p.config) : p.config, p.flag,
                   p.depth});
          graph.edges_.emplace_back();
          graph.parents_.emplace_back(cu, e.step);
          // The canonical discovery perm is the first-touch edge's perm
          // (the racing worker's perm may belong to a different parent
          // edge).
          if (sym != nullptr) graph.discovery_perms_.push_back(e.perm);
          order.push_back(e.to);
        }
        graph.edges_[cu].push_back(
            Edge{canon[e.to], e.step.pid, e.step.action.kind});
      }
    }
    // Every interned node has an in-edge from an expanded node (or is the
    // root / checkpoint prefix), so the walk must have covered the table.
    LBSA_CHECK(graph.nodes_.size() == total);
    LBSA_CHECK(graph.nodes_.size() == graph.edges_.size() &&
               graph.nodes_.size() == graph.parents_.size());
    return graph;
  };
  // Canonical ids of the pending frontier (ascending — the serial deque
  // order), from a post-walk canon map.
  auto canonical_frontier = [&](const std::vector<std::uint32_t>& canon) {
    std::vector<std::uint32_t> pending;
    pending.reserve(frontier.size());
    for (const WorkItem& item : frontier) pending.push_back(canon[item.id]);
    std::sort(pending.begin(), pending.end());
    return pending;
  };

  bool interrupted = false;
  Status checkpoint_status = Status::ok();
  while (!frontier.empty() && !exhausted.load(std::memory_order_relaxed)) {
    // Top of loop == level boundary: workers quiescent, every level < depth
    // fully expanded, `frontier` holding exactly the depth-`depth` nodes.
    const std::uint32_t session_levels = depth - start_depth;
    if (stop_reason(options, session_levels) != StopReason::kNone) {
      interrupted = true;
      break;
    }
    if (!options.checkpoint_path.empty() &&
        options.checkpoint_every_levels > 0 && session_levels > 0 &&
        session_levels % options.checkpoint_every_levels == 0) {
      std::vector<std::uint32_t> canon;
      const ConfigGraph snapshot = build_graph(/*final_pass=*/false, &canon);
      checkpoint_status = write_checkpoint(
          snapshot, canonical_frontier(canon), depth, fingerprint, options,
          flag_fn != nullptr, initial_flag);
      if (!checkpoint_status.is_ok()) break;
    }
    // Mirrors the serial engine's one "explore.level" phase span per level.
    obs::Span level_span("explore.level", obs::kCatPhase, /*lane=*/0);
    level_span.arg("level", depth);
    level_span.arg("nodes", static_cast<std::int64_t>(frontier.size()));
    cursor.store(0, std::memory_order_relaxed);
    level_start.arrive_and_wait();
    // Workers expand this level...
    level_end.arrive_and_wait();
    std::vector<WorkItem> next;
    for (WorkerOutput& out : outputs) {
      // Cross-worker concatenation order is arbitrary; the renumbering
      // pass below is insensitive to it.
      std::move(out.next.begin(), out.next.end(), std::back_inserter(next));
      out.next.clear();
      std::move(out.edges.begin(), out.edges.end(),
                std::back_inserter(all_edges));
      out.edges.clear();
      transition_count += out.transitions;
      out.transitions = 0;
    }
    frontier = std::move(next);
    ++depth;
  }
  done.store(true, std::memory_order_release);
  level_start.arrive_and_wait();
  for (std::thread& t : pool) t.join();
  if (!checkpoint_status.is_ok()) return checkpoint_status;

  // Intern-table occupancy / probe lengths (quiescent). Probe totals depend
  // on insertion interleaving and the serial engine has no intern table at
  // all, so every explore.intern.* metric is volatile by construction.
  if (obs::metrics_enabled()) {
    const auto table_stats = table.stats();
    LBSA_OBS_COUNTER_ADD_V("explore.intern.probes", table_stats.probes);
    LBSA_OBS_GAUGE_SET_V("explore.intern.entries",
                         static_cast<std::int64_t>(table_stats.entries));
    LBSA_OBS_GAUGE_SET_V("explore.intern.slots",
                         static_cast<std::int64_t>(table_stats.slots));
    LBSA_OBS_GAUGE_SET_V(
        "explore.intern.max_shard_entries",
        static_cast<std::int64_t>(table_stats.max_shard_entries));
    LBSA_OBS_HISTOGRAM_OBSERVE_V("explore.intern.probe_length",
                                 table_stats.entries == 0
                                     ? 0
                                     : table_stats.probes / table_stats.entries);
  }

  if (exhausted.load()) {
    return resource_exhausted("explore: node budget exceeded (" +
                              std::to_string(options.max_nodes) + ")");
  }

  // --- Canonical renumbering (single-threaded, at quiescence). ---
  std::vector<std::uint32_t> canon;
  ConfigGraph graph = build_graph(/*final_pass=*/true, &canon);
  if (interrupted) {
    graph.interrupted_ = true;
    graph.levels_completed_ = depth;
    graph.pending_frontier_ = canonical_frontier(canon);
    if (!options.checkpoint_path.empty()) {
      const Status written = write_checkpoint(
          graph, graph.pending_frontier_, depth, fingerprint, options,
          flag_fn != nullptr, initial_flag);
      if (!written.is_ok()) return written;
    }
  } else {
    graph.levels_completed_ =
        graph.nodes_.empty() ? 0 : graph.nodes_.back().depth + 1;
  }
  record_graph_metrics(graph);
  return graph;
}

std::vector<sim::Step> ConfigGraph::path_to(std::uint32_t id) const {
  if (canonicalizer_ == nullptr) {
    std::vector<sim::Step> steps;
    std::uint32_t cur = id;
    while (cur != root()) {
      const auto& [parent, step] = parents_[cur];
      steps.push_back(step);
      cur = parent;
    }
    std::reverse(steps.begin(), steps.end());
    return steps;
  }

  // Symmetry-reduced graph: every recorded step acted in its parent's
  // *representative* space, so the raw parent chain is generally not an
  // execution of the protocol. Lift it: maintain σ, the renaming that maps
  // the concrete run being rebuilt onto the stored representative of the
  // current node (σ starts as the root's canonicalizing perm and composes
  // each node's discovery perm on the way down); a representative step by
  // pid r lifts to a concrete step by σ⁻¹(r) with the same outcome choice
  // (renaming maps outcome lists elementwise in order — see sim/symmetry.h).
  std::vector<std::uint32_t> chain;  // nodes after the root, in path order
  for (std::uint32_t cur = id; cur != root(); cur = parents_[cur].first) {
    chain.push_back(cur);
  }
  std::reverse(chain.begin(), chain.end());

  const sim::Protocol& protocol = *lift_protocol_;
  const int n = protocol.process_count();
  std::vector<int> sigma(static_cast<std::size_t>(n));
  for (int p = 0; p < n; ++p) sigma[static_cast<std::size_t>(p)] = p;
  auto compose = [&](const std::vector<std::uint8_t>& pi) {
    if (pi.empty()) return;  // identity
    for (int p = 0; p < n; ++p) {
      sigma[static_cast<std::size_t>(p)] = static_cast<int>(
          pi[static_cast<std::size_t>(sigma[static_cast<std::size_t>(p)])]);
    }
  };
  compose(discovery_perms_[root()]);

  sim::Config concrete = sim::initial_config(protocol);
  std::vector<sim::Step> steps;
  steps.reserve(chain.size());
  for (std::uint32_t v : chain) {
    const sim::Step& rep_step = parents_[v].second;
    int concrete_pid = -1;
    for (int p = 0; p < n; ++p) {
      if (sigma[static_cast<std::size_t>(p)] == rep_step.pid) {
        concrete_pid = p;
        break;
      }
    }
    LBSA_CHECK(concrete_pid >= 0);
    steps.push_back(sim::apply_step(protocol, &concrete, concrete_pid,
                                    rep_step.outcome_choice));
    compose(discovery_perms_[v]);
  }
  // Certify the lift: renaming the concrete endpoint by σ must reproduce
  // the stored representative bit for bit.
  sim::Config renamed = concrete;
  sim::apply_pid_permutation(protocol, sigma, &renamed);
  LBSA_CHECK_MSG(renamed == nodes_[static_cast<std::size_t>(id)].config,
                 "symmetry lift failed to land on the representative");
  return steps;
}

std::uint64_t ConfigGraph::full_node_estimate() const {
  if (canonicalizer_ == nullptr) {
    return static_cast<std::uint64_t>(nodes_.size());
  }
  std::uint64_t total = 0;
  for (const Node& node : nodes_) {
    total += canonicalizer_->orbit_size(node.config);
  }
  return total;
}

const char* reduction_name(Reduction reduction) {
  switch (reduction) {
    case Reduction::kNone:
      return "none";
    case Reduction::kSymmetry:
      return "symmetry";
    case Reduction::kPor:
      return "por";
    case Reduction::kBoth:
      return "both";
  }
  return "none";
}

StatusOr<Reduction> parse_reduction(const std::string& name) {
  if (name == "none") return Reduction::kNone;
  if (name == "symmetry") return Reduction::kSymmetry;
  if (name == "por") return Reduction::kPor;
  if (name == "both") return Reduction::kBoth;
  return invalid_argument("unknown reduction '" + name +
                          "' (known: none, symmetry, por, both)");
}

StatusOr<ConfigGraph> Explorer::explore(const ExploreOptions& options,
                                        FlagFn flag_fn,
                                        std::int64_t initial_flag) const {
  const int threads = resolve_threads(options);
  const bool parallel =
      options.engine == ExploreEngine::kParallel ||
      (options.engine == ExploreEngine::kAuto && threads > 1);

  const bool want_sym = options.reduction == Reduction::kSymmetry ||
                        options.reduction == Reduction::kBoth;
  const bool por = options.reduction == Reduction::kPor ||
                   options.reduction == Reduction::kBoth;
  std::shared_ptr<const sim::Canonicalizer> sym;
  if (want_sym) {
    sim::SymmetrySpec spec = protocol_->symmetry();
    if (!spec.trivial()) {
      if (flag_fn && !options.flag_fn_symmetric) {
        return invalid_argument(
            "explore: flag function combined with symmetry reduction on a "
            "protocol with a non-trivial symmetry group; declare invariance "
            "via ExploreOptions::flag_fn_symmetric or drop to "
            "reduction=none/por");
      }
      sym = std::make_shared<const sim::Canonicalizer>(protocol_,
                                                       std::move(spec));
      LBSA_OBS_GAUGE_MAX("explore.sym.group_size",
                         static_cast<std::int64_t>(sym->group_size()));
    }
  }

  const std::uint64_t fingerprint = explore_fingerprint(
      *protocol_, options, flag_fn != nullptr, initial_flag);
  if (options.resume != nullptr) {
    const ExploreCheckpoint& cp = *options.resume;
    if (cp.fingerprint != fingerprint) {
      const std::string suffix =
          cp.task_label.empty() ? std::string()
                                : " (checkpoint task: '" + cp.task_label + "')";
      // Name the mismatched knob when an echoed parameter disagrees; fall
      // back to the generic fingerprint message (different protocol/task).
      if (cp.reduction != options.reduction) {
        return failed_precondition(
            std::string("resume: checkpoint was written under reduction '") +
            reduction_name(cp.reduction) + "', this run requests '" +
            reduction_name(options.reduction) + "'" + suffix);
      }
      if (cp.max_nodes != options.max_nodes) {
        return failed_precondition(
            "resume: checkpoint node budget " + std::to_string(cp.max_nodes) +
            " does not match requested " + std::to_string(options.max_nodes) +
            suffix);
      }
      if (cp.allow_truncation != options.allow_truncation) {
        return failed_precondition(
            "resume: checkpoint allow_truncation disagrees with this run" +
            suffix);
      }
      if (cp.has_flag_fn != (flag_fn != nullptr)) {
        return failed_precondition(
            std::string("resume: checkpoint was written ") +
            (cp.has_flag_fn ? "with" : "without") +
            " a path-flag function, this run is the opposite" + suffix);
      }
      if (cp.initial_flag != initial_flag) {
        return failed_precondition(
            "resume: checkpoint initial flag " +
            std::to_string(cp.initial_flag) + " does not match requested " +
            std::to_string(initial_flag) + suffix);
      }
      return failed_precondition(
          "resume: checkpoint fingerprint mismatch — written for a "
          "different protocol/task or option set" +
          suffix);
    }
    if (cp.node_words.empty()) {
      return invalid_argument("resume: checkpoint has no nodes");
    }
    if ((sym != nullptr) != !cp.discovery_perms.empty()) {
      return invalid_argument(
          "resume: checkpoint discovery permutations disagree with the "
          "active symmetry reduction");
    }
    for (std::uint32_t id : cp.frontier) {
      if (cp.node_depths[id] != cp.levels_completed) {
        return invalid_argument(
            "resume: frontier node depth disagrees with levels_completed");
      }
    }
  }

  LBSA_OBS_COUNTER_ADD("explore.runs", 1);
  LBSA_OBS_SPAN(run_span, "explore.run", obs::kCatTask, /*lane=*/0);
  StatusOr<ConfigGraph> result =
      parallel ? explore_parallel(options, threads, flag_fn, initial_flag,
                                  sym.get(), por, fingerprint)
               : explore_serial(options, flag_fn, initial_flag, sym.get(), por,
                                fingerprint);
  if (result.is_ok()) {
    ConfigGraph& graph = result.value();
    graph.reduction_ = options.reduction;
    graph.canonicalizer_ = std::move(sym);
    graph.lift_protocol_ = protocol_;
  }
  return result;
}

}  // namespace lbsa::modelcheck
