// Structural analysis of critical configurations — the mechanized form of
// the proofs' pivotal combinatorial step.
//
// Claims 4.2.7 and 5.2.3 argue that at a critical configuration (bivalent,
// every successor univalent), the pending steps of the relevant processes
// must all be operations ON THE SAME OBJECT — otherwise steps on different
// objects would commute and valence could not flip. The subsequent claims
// (4.2.8-4.2.10, 5.2.4-5.2.8) then interrogate that object's TYPE.
//
// This analyzer extracts, for each critical configuration of an explored
// graph: which object each enabled process is about to access, whether they
// coincide, and the type of the common object. Tests assert the claim's
// shape on concrete protocols (e.g. for one-shot consensus via an
// n-consensus object, the unique critical configuration has every process
// poised on the consensus object).
//
// On a symmetry-reduced graph the analysis runs over orbit representatives;
// pending-step pids are representative-space pids, and each CriticalInfo
// stands for orbit_size-many concrete critical configurations with renamed
// pending steps but identical object/type structure (renaming never changes
// which object a process is poised on, only its name).
#ifndef LBSA_MODELCHECK_CRITICAL_H_
#define LBSA_MODELCHECK_CRITICAL_H_

#include <string>
#include <vector>

#include "modelcheck/explorer.h"
#include "modelcheck/valence.h"

namespace lbsa::modelcheck {

struct PendingStep {
  int pid = -1;
  // Object the process is about to operate on, or -1 for a local
  // (decide/abort) step.
  int object_index = -1;
  std::string description;  // formatted action
};

struct CriticalInfo {
  std::uint32_t node = 0;
  std::vector<PendingStep> pending;
  // True iff every enabled process's next step is an operation on one common
  // shared object (the Claim 4.2.7 / 5.2.3 shape).
  bool all_on_same_object = false;
  int common_object = -1;                // valid iff all_on_same_object
  std::string common_object_type;       // type name, iff all_on_same_object
};

// Analyzes one node (need not be critical; callers usually pass
// ValenceAnalyzer::critical_nodes()).
CriticalInfo analyze_pending_steps(const sim::Protocol& protocol,
                                   const ConfigGraph& graph,
                                   std::uint32_t node);

// Convenience: full analysis of every critical configuration.
std::vector<CriticalInfo> analyze_critical_configurations(
    const sim::Protocol& protocol, const ConfigGraph& graph,
    const ValenceAnalyzer& analyzer);

}  // namespace lbsa::modelcheck

#endif  // LBSA_MODELCHECK_CRITICAL_H_
