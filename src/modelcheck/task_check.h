// Machine checkers for the decision tasks of the paper: k-set agreement
// (consensus = 1-set agreement) and the n-DAC problem of Section 4. Each
// checker explores the protocol's full configuration graph and verifies the
// task's properties over *all* schedules and all nondeterministic object
// behaviours, reporting a concrete counterexample trace on failure.
//
// Property glossary (paper, Sections 1 and 4):
//   k-set agreement: Agreement (at most k distinct decisions), Validity
//   (decisions were proposed), Wait-free termination (no process can take
//   infinitely many steps without deciding).
//   n-DAC: Agreement, Validity (a decided value is the input of some process
//   that does not abort), Termination (a): the distinguished process p
//   running forever decides or aborts; Termination (b): any q != p running
//   solo decides; Nontriviality: p aborts only if some q != p took a step.
#ifndef LBSA_MODELCHECK_TASK_CHECK_H_
#define LBSA_MODELCHECK_TASK_CHECK_H_

#include <memory>
#include <string>
#include <vector>

#include "base/status.h"
#include "modelcheck/explorer.h"

namespace lbsa::modelcheck {

struct TaskCheckOptions {
  // explore.threads > 1 (or 0 = auto) builds the configuration graph with
  // the parallel explorer; results are identical by the canonical-graph
  // guarantee (see docs/checking.md, "Parallel exploration").
  // explore.reduction enables symmetry / partial-order reduction: verdicts
  // (which properties are violated, and clean reports) are preserved, but
  // violation *counts* and reported node counts shrink with the graph, and
  // counterexample traces are lifted representatives rather than the
  // lexicographically-first full-graph witness. check_dac_task additionally
  // requires the symmetry group to fix the distinguished process and
  // returns INVALID_ARGUMENT otherwise (the nontriviality flag must be
  // group-invariant).
  ExploreOptions explore;
  // Node budget for each solo-run termination check.
  std::uint64_t solo_node_bound = 100'000;
  // Stop after this many violations (>=1; keeps reports readable).
  int max_violations = 8;
};

struct PropertyViolation {
  std::string property;  // e.g. "agreement", "termination(b)"
  std::string detail;
  std::vector<std::string> trace;  // formatted steps from the initial config
};

struct TaskReport {
  std::vector<PropertyViolation> violations;
  std::uint64_t node_count = 0;
  std::uint64_t transition_count = 0;
  // Sum of orbit sizes over explored nodes: on a complete exploration this
  // equals the full (unreduced) graph's node count under pure symmetry
  // reduction and lower-bounds it under POR; equals node_count when no
  // reduction is enabled. The hierarchy sweep derives reduction ratios from
  // it without re-exploring the full graph.
  std::uint64_t full_node_estimate = 0;
  // True iff the underlying exploration was truncated (see
  // ExploreOptions::allow_truncation): violations are real, but a clean
  // report certifies only the explored region.
  bool partial = false;

  bool ok() const { return violations.empty(); }
  // True iff some violation is for `property`.
  bool violates(const std::string& property) const;
  std::string to_string() const;
};

// Checks Agreement(k), Validity, wait-free Termination, and absence of
// aborts for a k-set-agreement protocol whose process inputs are `inputs`
// (inputs.size() == process_count).
StatusOr<TaskReport> check_k_agreement_task(
    std::shared_ptr<const sim::Protocol> protocol, int k,
    const std::vector<Value>& inputs, const TaskCheckOptions& options = {});

// Consensus is 1-set agreement.
inline StatusOr<TaskReport> check_consensus_task(
    std::shared_ptr<const sim::Protocol> protocol,
    const std::vector<Value>& inputs, const TaskCheckOptions& options = {}) {
  return check_k_agreement_task(std::move(protocol), 1, inputs, options);
}

// Checks the n-DAC properties with `distinguished_pid` as the process p.
StatusOr<TaskReport> check_dac_task(
    std::shared_ptr<const sim::Protocol> protocol, int distinguished_pid,
    const std::vector<Value>& inputs, const TaskCheckOptions& options = {});

}  // namespace lbsa::modelcheck

#endif  // LBSA_MODELCHECK_TASK_CHECK_H_
