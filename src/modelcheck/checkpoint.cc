#include "modelcheck/checkpoint.h"

#include <unistd.h>

#include <atomic>
#include <bit>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <limits>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "base/check.h"
#include "base/hashing.h"

namespace lbsa::modelcheck {
namespace {

// Magic numbers double as file-kind tags: an explore checkpoint handed to
// the fuzz reader (or vice versa) fails immediately with a clear message.
constexpr std::uint64_t kExploreMagic = 0x4c42534145585031ULL;  // "LBSAEXP1"
constexpr std::uint64_t kFuzzMagic = 0x4c42534146555a31ULL;     // "LBSAFUZ1"

std::int64_t as_word(std::uint64_t v) { return std::bit_cast<std::int64_t>(v); }
std::uint64_t as_u64(std::int64_t w) { return std::bit_cast<std::uint64_t>(w); }

// Appends payload words. Everything is one int64 per logical field; strings
// and byte vectors spend one word per byte (checkpoints are dominated by
// configuration words, so the slack is irrelevant and the format stays
// trivially seekless).
class WordWriter {
 public:
  void i64(std::int64_t v) { words_.push_back(v); }
  void u64(std::uint64_t v) { words_.push_back(as_word(v)); }
  void u32(std::uint32_t v) { words_.push_back(static_cast<std::int64_t>(v)); }
  void boolean(bool v) { words_.push_back(v ? 1 : 0); }

  void str(const std::string& s) {
    u64(s.size());
    for (char c : s) {
      words_.push_back(static_cast<std::int64_t>(
          static_cast<unsigned char>(c)));
    }
  }

  void bytes(const std::vector<std::uint8_t>& v) {
    u64(v.size());
    for (std::uint8_t b : v) words_.push_back(static_cast<std::int64_t>(b));
  }

  void word_vec(const std::vector<std::int64_t>& v) {
    u64(v.size());
    words_.insert(words_.end(), v.begin(), v.end());
  }

  void step(const sim::Step& s) {
    i64(s.pid);
    i64(static_cast<std::int64_t>(s.action.kind));
    i64(s.action.object_index);
    i64(static_cast<std::int64_t>(s.action.op.code));
    i64(s.action.op.arg0);
    i64(s.action.op.arg1);
    i64(s.action.decision);
    i64(s.response);
    i64(s.outcome_choice);
  }

  const std::vector<std::int64_t>& words() const { return words_; }

 private:
  std::vector<std::int64_t> words_;
};

// Linear payload reader. The first malformed read latches an error status;
// subsequent reads return zero values, so decoders can run straight through
// and check status() once (plus explicit bounds checks before large
// reserves, via count()).
class WordReader {
 public:
  explicit WordReader(std::span<const std::int64_t> words) : words_(words) {}

  std::int64_t i64() {
    if (!status_.is_ok()) return 0;
    if (pos_ >= words_.size()) {
      fail("truncated payload");
      return 0;
    }
    return words_[pos_++];
  }

  std::uint64_t u64() { return as_u64(i64()); }

  std::uint32_t u32(const char* what) {
    const std::int64_t v = i64();
    if (v < 0 || v > static_cast<std::int64_t>(
                        std::numeric_limits<std::uint32_t>::max())) {
      fail(std::string(what) + " out of range");
      return 0;
    }
    return static_cast<std::uint32_t>(v);
  }

  bool boolean(const char* what) {
    const std::int64_t v = i64();
    if (v != 0 && v != 1) {
      fail(std::string(what) + " is not a boolean");
      return false;
    }
    return v == 1;
  }

  // An element count for a sequence whose elements each occupy at least
  // min_words_per_element payload words — bounding counts by the remaining
  // payload rejects absurd sizes before any allocation.
  std::size_t count(const char* what, std::size_t min_words_per_element = 1) {
    const std::int64_t v = i64();
    if (v < 0 ||
        static_cast<std::uint64_t>(v) * min_words_per_element > remaining()) {
      fail(std::string(what) + " count exceeds payload");
      return 0;
    }
    return static_cast<std::size_t>(v);
  }

  std::string str(const char* what) {
    const std::size_t n = count(what);
    std::string out;
    out.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      const std::int64_t c = i64();
      if (c < 0 || c > 255) {
        fail(std::string(what) + " has a non-byte character");
        return out;
      }
      out.push_back(static_cast<char>(static_cast<unsigned char>(c)));
    }
    return out;
  }

  std::vector<std::uint8_t> bytes(const char* what) {
    const std::size_t n = count(what);
    std::vector<std::uint8_t> out;
    out.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      const std::int64_t b = i64();
      if (b < 0 || b > 255) {
        fail(std::string(what) + " has a non-byte element");
        return out;
      }
      out.push_back(static_cast<std::uint8_t>(b));
    }
    return out;
  }

  std::vector<std::int64_t> word_vec(const char* what) {
    const std::size_t n = count(what);
    std::vector<std::int64_t> out;
    if (!status_.is_ok()) return out;
    out.assign(words_.begin() + static_cast<std::ptrdiff_t>(pos_),
               words_.begin() + static_cast<std::ptrdiff_t>(pos_ + n));
    pos_ += n;
    return out;
  }

  sim::Step step() {
    sim::Step s;
    s.pid = static_cast<int>(i64());
    const std::int64_t kind = i64();
    if (kind < 0 ||
        kind > static_cast<std::int64_t>(sim::Action::Kind::kAbort)) {
      fail("step action kind out of range");
      return s;
    }
    s.action.kind = static_cast<sim::Action::Kind>(kind);
    s.action.object_index = static_cast<int>(i64());
    s.action.op.code = static_cast<spec::OpCode>(i64());
    s.action.op.arg0 = i64();
    s.action.op.arg1 = i64();
    s.action.decision = i64();
    s.response = i64();
    s.outcome_choice = static_cast<int>(i64());
    return s;
  }

  std::uint64_t remaining() const { return words_.size() - pos_; }
  bool done() const { return pos_ == words_.size(); }
  const Status& status() const { return status_; }
  void fail(const std::string& what) {
    if (status_.is_ok()) status_ = invalid_argument("checkpoint: " + what);
  }

 private:
  std::span<const std::int64_t> words_;
  std::size_t pos_ = 0;
  Status status_;
};

// Writes [magic, version, payload count, payload hash, payload] to a
// same-directory temp file, then renames over `path`. rename(2) is atomic
// on POSIX, so readers only ever see a complete old file or a complete new
// one — an interrupted write leaves at worst a stray temp file.
//
// The temp name carries a pid + per-process-counter suffix: two writers
// staging the same `path` concurrently (two server requests sharing a
// checkpoint path, or two CLI runs) each stage a private file, so neither
// can truncate or rename the other's half-written bytes — the last rename
// wins with a complete file either way.
Status write_words_atomic(std::uint64_t magic,
                          const std::vector<std::int64_t>& payload,
                          const std::string& path) {
  std::vector<std::int64_t> file;
  file.reserve(payload.size() + 4);
  file.push_back(as_word(magic));
  file.push_back(static_cast<std::int64_t>(kCheckpointSchemaVersion));
  file.push_back(static_cast<std::int64_t>(payload.size()));
  file.push_back(as_word(hash_words(payload)));
  file.insert(file.end(), payload.begin(), payload.end());

  static std::atomic<std::uint64_t> stage_counter{0};
  const std::string tmp =
      path + ".tmp." + std::to_string(static_cast<long long>(::getpid())) +
      "." + std::to_string(stage_counter.fetch_add(1,
                                                   std::memory_order_relaxed));
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (f == nullptr) {
    return internal_error("cannot open checkpoint temp file: " + tmp);
  }
  const std::size_t wrote =
      std::fwrite(file.data(), sizeof(std::int64_t), file.size(), f);
  const bool flushed = std::fflush(f) == 0;
  const bool closed = std::fclose(f) == 0;
  if (wrote != file.size() || !flushed || !closed) {
    std::remove(tmp.c_str());
    return internal_error("short write to checkpoint temp file: " + tmp);
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return internal_error("cannot rename checkpoint into place: " + path);
  }
  return Status::ok();
}

StatusOr<std::vector<std::int64_t>> read_words(std::uint64_t magic,
                                               const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return not_found("cannot open checkpoint: " + path);

  // Size the file before trusting any header field, so a corrupt payload
  // count can never drive the allocation below.
  if (std::fseek(f, 0, SEEK_END) != 0) {
    std::fclose(f);
    return invalid_argument("cannot size checkpoint: " + path);
  }
  const long file_bytes = std::ftell(f);
  std::rewind(f);
  if (file_bytes < 0 ||
      static_cast<std::size_t>(file_bytes) % sizeof(std::int64_t) != 0) {
    std::fclose(f);
    return invalid_argument("checkpoint is not a whole number of words: " +
                            path);
  }
  const std::size_t file_words =
      static_cast<std::size_t>(file_bytes) / sizeof(std::int64_t);

  std::int64_t header[4];
  if (file_words < 4 || std::fread(header, sizeof(std::int64_t), 4, f) != 4) {
    std::fclose(f);
    return invalid_argument("checkpoint too short for header: " + path);
  }
  if (as_u64(header[0]) != magic) {
    std::fclose(f);
    return invalid_argument("not a checkpoint of this kind (bad magic): " +
                            path);
  }
  if (header[1] != static_cast<std::int64_t>(kCheckpointSchemaVersion)) {
    std::fclose(f);
    return invalid_argument(
        "checkpoint schema version " + std::to_string(header[1]) +
        " unsupported (expected " +
        std::to_string(kCheckpointSchemaVersion) + "): " + path);
  }
  if (header[2] < 0 ||
      static_cast<std::size_t>(header[2]) != file_words - 4) {
    std::fclose(f);
    return invalid_argument("checkpoint payload size mismatch: " + path);
  }
  const auto payload_count = static_cast<std::size_t>(header[2]);
  std::vector<std::int64_t> payload(payload_count);
  const std::size_t got =
      std::fread(payload.data(), sizeof(std::int64_t), payload_count, f);
  std::fclose(f);
  if (got != payload_count) {
    return invalid_argument("checkpoint payload size mismatch: " + path);
  }
  if (hash_words(payload) != as_u64(header[3])) {
    return invalid_argument("checkpoint checksum mismatch (corrupt file): " +
                            path);
  }
  return payload;
}

std::uint64_t mix_double(std::uint64_t h, double v) {
  return hash_combine(h, std::bit_cast<std::uint64_t>(v));
}

}  // namespace

std::uint64_t explore_fingerprint(const sim::Protocol& protocol,
                                  const ExploreOptions& options,
                                  bool has_flag_fn,
                                  std::int64_t initial_flag) {
  const std::vector<std::int64_t> init =
      sim::initial_config(protocol).encode();
  std::uint64_t h = hash_words(init, /*seed=*/0x6578706c6f726531ULL);
  h = hash_combine(h, static_cast<std::uint64_t>(protocol.process_count()));
  h = hash_combine(h, static_cast<std::uint64_t>(options.reduction));
  h = hash_combine(h, has_flag_fn ? 1 : 0);
  h = hash_combine(h, static_cast<std::uint64_t>(initial_flag));
  h = hash_combine(h, options.max_nodes);
  h = hash_combine(h, options.allow_truncation ? 1 : 0);
  h = hash_combine(h, options.flag_fn_symmetric ? 1 : 0);
  return h;
}

std::uint64_t fuzz_fingerprint(const sim::Protocol& protocol,
                               const FuzzOptions& options) {
  const std::vector<std::int64_t> init =
      sim::initial_config(protocol).encode();
  std::uint64_t h = hash_words(init, /*seed=*/0x66757a7a63616d70ULL);
  h = hash_combine(h, static_cast<std::uint64_t>(protocol.process_count()));
  h = hash_combine(h, options.runs);
  h = hash_combine(h, options.max_steps_per_run);
  h = hash_combine(h, options.seed);
  h = mix_double(h, options.burst_fraction);
  h = hash_combine(h, static_cast<std::uint64_t>(options.max_violations));
  h = hash_combine(h, options.coverage_guided ? 1 : 0);
  h = hash_combine(h, options.pool_limit);
  h = mix_double(h, options.mutation_fraction);
  h = hash_combine(h, options.max_fingerprints_per_run);
  return h;
}

Status validate_fuzz_resume(const sim::Protocol& protocol,
                            const FuzzOptions& options,
                            const FuzzCheckpoint& cp) {
  if (!options.coverage_guided) {
    return failed_precondition(
        "fuzz resume: checkpoints exist only for the coverage engine "
        "(the blind engine is stateless across runs)");
  }
  if (cp.fingerprint != fuzz_fingerprint(protocol, options)) {
    const std::string suffix =
        cp.task_label.empty() ? std::string()
                              : " (checkpoint task: '" + cp.task_label + "')";
    return failed_precondition(
        "fuzz resume: checkpoint fingerprint mismatch — written for a "
        "different task, seed, or campaign option set" +
        suffix);
  }
  if (cp.runs_completed > options.runs) {
    return failed_precondition(
        "fuzz resume: checkpoint has " + std::to_string(cp.runs_completed) +
        " completed runs but the campaign budget is only " +
        std::to_string(options.runs));
  }
  return Status::ok();
}

Status write_explore_checkpoint(const ExploreCheckpoint& checkpoint,
                                const std::string& path) {
  const std::size_t n = checkpoint.node_words.size();
  LBSA_CHECK(checkpoint.node_flags.size() == n &&
             checkpoint.node_depths.size() == n &&
             checkpoint.parents.size() == n &&
             checkpoint.parent_steps.size() == n &&
             checkpoint.edges.size() == n);
  LBSA_CHECK(checkpoint.discovery_perms.empty() ||
             checkpoint.discovery_perms.size() == n);

  WordWriter w;
  w.u64(checkpoint.fingerprint);
  w.str(checkpoint.task_label);
  w.i64(static_cast<std::int64_t>(checkpoint.reduction));
  w.i64(checkpoint.initial_flag);
  w.boolean(checkpoint.has_flag_fn);
  w.u64(checkpoint.max_nodes);
  w.boolean(checkpoint.allow_truncation);
  w.boolean(checkpoint.truncated);
  w.u64(checkpoint.transition_count);
  w.u32(checkpoint.levels_completed);

  w.u64(n);
  w.boolean(!checkpoint.discovery_perms.empty());
  for (std::size_t i = 0; i < n; ++i) {
    w.word_vec(checkpoint.node_words[i]);
    w.i64(checkpoint.node_flags[i]);
    w.u32(checkpoint.node_depths[i]);
    w.u32(checkpoint.parents[i]);
    w.step(checkpoint.parent_steps[i]);
    if (!checkpoint.discovery_perms.empty()) {
      w.bytes(checkpoint.discovery_perms[i]);
    }
    w.u64(checkpoint.edges[i].size());
    for (const Edge& e : checkpoint.edges[i]) {
      w.u32(e.to);
      w.i64(e.pid);
      w.i64(static_cast<std::int64_t>(e.kind));
    }
  }
  w.u64(checkpoint.frontier.size());
  for (std::uint32_t id : checkpoint.frontier) w.u32(id);

  return write_words_atomic(kExploreMagic, w.words(), path);
}

StatusOr<ExploreCheckpoint> read_explore_checkpoint(const std::string& path) {
  auto payload = read_words(kExploreMagic, path);
  if (!payload.is_ok()) return payload.status();
  WordReader r(payload.value());

  ExploreCheckpoint cp;
  cp.fingerprint = r.u64();
  cp.task_label = r.str("task label");
  const std::int64_t reduction = r.i64();
  if (reduction < 0 ||
      reduction > static_cast<std::int64_t>(Reduction::kBoth)) {
    r.fail("reduction mode out of range");
  }
  cp.reduction = static_cast<Reduction>(reduction);
  cp.initial_flag = r.i64();
  cp.has_flag_fn = r.boolean("has_flag_fn");
  cp.max_nodes = r.u64();
  cp.allow_truncation = r.boolean("allow_truncation");
  cp.truncated = r.boolean("truncated");
  cp.transition_count = r.u64();
  cp.levels_completed = r.u32("levels_completed");

  // Each node needs at least its word count, flag, depth, parent, step (9)
  // and edge count.
  const std::size_t n = r.count("node", /*min_words_per_element=*/14);
  const bool has_perms = r.boolean("has discovery perms");
  cp.node_words.reserve(n);
  cp.node_flags.reserve(n);
  cp.node_depths.reserve(n);
  cp.parents.reserve(n);
  cp.parent_steps.reserve(n);
  cp.edges.reserve(n);
  if (has_perms) cp.discovery_perms.reserve(n);
  for (std::size_t i = 0; i < n && r.status().is_ok(); ++i) {
    cp.node_words.push_back(r.word_vec("node config words"));
    cp.node_flags.push_back(r.i64());
    cp.node_depths.push_back(r.u32("node depth"));
    cp.parents.push_back(r.u32("node parent"));
    cp.parent_steps.push_back(r.step());
    if (has_perms) cp.discovery_perms.push_back(r.bytes("discovery perm"));
    const std::size_t edge_count =
        r.count("edge", /*min_words_per_element=*/3);
    std::vector<Edge> edges;
    edges.reserve(edge_count);
    for (std::size_t j = 0; j < edge_count && r.status().is_ok(); ++j) {
      Edge e;
      e.to = r.u32("edge target");
      e.pid = static_cast<std::int32_t>(r.i64());
      const std::int64_t kind = r.i64();
      if (kind < 0 ||
          kind > static_cast<std::int64_t>(sim::Action::Kind::kAbort)) {
        r.fail("edge action kind out of range");
      }
      e.kind = static_cast<sim::Action::Kind>(kind);
      if (e.to >= n) r.fail("edge target beyond node count");
      edges.push_back(e);
    }
    cp.edges.push_back(std::move(edges));
  }
  const std::size_t frontier_count = r.count("frontier");
  cp.frontier.reserve(frontier_count);
  for (std::size_t i = 0; i < frontier_count && r.status().is_ok(); ++i) {
    const std::uint32_t id = r.u32("frontier id");
    if (id >= n) r.fail("frontier id beyond node count");
    if (!cp.frontier.empty() && id <= cp.frontier.back()) {
      r.fail("frontier ids not ascending");
    }
    cp.frontier.push_back(id);
  }
  if (r.status().is_ok() && !r.done()) r.fail("trailing payload words");
  if (!r.status().is_ok()) return r.status();

  // Structural sanity beyond per-field ranges: parents precede children.
  for (std::size_t i = 1; i < n; ++i) {
    if (cp.parents[i] >= i) {
      return invalid_argument("checkpoint: parent id not before child");
    }
  }
  return cp;
}

Status write_fuzz_checkpoint(const FuzzCheckpoint& checkpoint,
                             const std::string& path) {
  WordWriter w;
  w.u64(checkpoint.fingerprint);
  w.str(checkpoint.task_label);
  w.u64(checkpoint.runs_completed);
  for (std::uint64_t word : checkpoint.rng_state) w.u64(word);
  w.u64(checkpoint.global_fingerprints.size());
  for (std::uint64_t fp : checkpoint.global_fingerprints) w.u64(fp);
  w.u64(checkpoint.pool.size());
  for (const std::string& s : checkpoint.pool) w.str(s);
  w.u64(checkpoint.runs_terminated);
  w.u64(checkpoint.interesting_runs);
  w.u64(checkpoint.mutated_runs);
  w.u64(checkpoint.violations.size());
  for (const auto& v : checkpoint.violations) {
    w.str(v.property);
    w.str(v.detail);
    w.u64(v.run_seed);
    w.str(v.schedule);
    w.u64(v.raw_steps);
  }
  return write_words_atomic(kFuzzMagic, w.words(), path);
}

StatusOr<FuzzCheckpoint> read_fuzz_checkpoint(const std::string& path) {
  auto payload = read_words(kFuzzMagic, path);
  if (!payload.is_ok()) return payload.status();
  WordReader r(payload.value());

  FuzzCheckpoint cp;
  cp.fingerprint = r.u64();
  cp.task_label = r.str("task label");
  cp.runs_completed = r.u64();
  for (std::size_t i = 0; i < cp.rng_state.size(); ++i) {
    cp.rng_state[i] = r.u64();
  }
  if ((cp.rng_state[0] | cp.rng_state[1] | cp.rng_state[2] |
       cp.rng_state[3]) == 0 &&
      r.status().is_ok()) {
    r.fail("all-zero RNG state");
  }
  const std::size_t fp_count = r.count("fingerprint");
  cp.global_fingerprints.reserve(fp_count);
  for (std::size_t i = 0; i < fp_count && r.status().is_ok(); ++i) {
    const std::uint64_t fp = r.u64();
    if (!cp.global_fingerprints.empty() &&
        fp <= cp.global_fingerprints.back()) {
      r.fail("fingerprints not sorted ascending");
    }
    cp.global_fingerprints.push_back(fp);
  }
  const std::size_t pool_count = r.count("pool");
  cp.pool.reserve(pool_count);
  for (std::size_t i = 0; i < pool_count && r.status().is_ok(); ++i) {
    cp.pool.push_back(r.str("pool schedule"));
  }
  cp.runs_terminated = r.u64();
  cp.interesting_runs = r.u64();
  cp.mutated_runs = r.u64();
  const std::size_t violation_count =
      r.count("violation", /*min_words_per_element=*/5);
  cp.violations.reserve(violation_count);
  for (std::size_t i = 0; i < violation_count && r.status().is_ok(); ++i) {
    FuzzCheckpoint::RawViolation v;
    v.property = r.str("violation property");
    v.detail = r.str("violation detail");
    v.run_seed = r.u64();
    v.schedule = r.str("violation schedule");
    v.raw_steps = r.u64();
    cp.violations.push_back(std::move(v));
  }
  if (r.status().is_ok() && !r.done()) r.fail("trailing payload words");
  if (!r.status().is_ok()) return r.status();
  return cp;
}

}  // namespace lbsa::modelcheck
