#include "modelcheck/run_task.h"

#include <cinttypes>
#include <cstdarg>
#include <cstdio>
#include <string>
#include <thread>
#include <utility>

#include "obs/json.h"

namespace lbsa::modelcheck {
namespace {

// printf-append onto a std::string; the human summaries reuse the CLIs'
// exact format strings so tools parsing stdout (run_report.sh) keep working.
void appendf(std::string* out, const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list copy;
  va_copy(copy, args);
  const int n = std::vsnprintf(nullptr, 0, fmt, copy);
  va_end(copy);
  if (n > 0) {
    const std::size_t old = out->size();
    out->resize(old + static_cast<std::size_t>(n) + 1);
    std::vsnprintf(out->data() + old, static_cast<std::size_t>(n) + 1, fmt,
                   args);
    out->resize(old + static_cast<std::size_t>(n));
  }
  va_end(args);
}

}  // namespace

TaskRunResult run_explore_task(const NamedTask& task,
                               const ExploreTaskSpec& spec) {
  TaskRunResult result;
  const ExploreOptions& options = spec.options;

  Explorer explorer(task.protocol);
  auto graph_or = explorer.explore(options);
  if (!graph_or.is_ok()) {
    result.exit_code = 1;
    result.error = task.name + ": " + graph_or.status().to_string();
    return result;
  }
  const ConfigGraph& graph = graph_or.value();
  // Truncated and interrupted graphs are incomplete: the full-graph estimate
  // only covers visited orbits, so the reduction ratio would understate the
  // reduction (or divide nonsense) — omit it rather than mislead.
  const bool complete = !graph.truncated() && !graph.interrupted();
  result.work_items = graph.nodes().size();

  std::uint32_t max_depth = 0;
  for (const Node& node : graph.nodes()) {
    if (node.depth > max_depth) max_depth = node.depth;
  }
  appendf(&result.human, "%s: %zu nodes, %llu transitions, depth %u%s%s\n",
          task.name.c_str(), graph.nodes().size(),
          static_cast<unsigned long long>(graph.transition_count()), max_depth,
          graph.truncated() ? " (truncated)" : "",
          graph.interrupted() ? " (interrupted)" : "");
  if (graph.interrupted()) {
    const std::string resume_hint =
        options.checkpoint_path.empty()
            ? ""
            : "; resume with --resume " + options.checkpoint_path;
    appendf(&result.human, "  interrupted after %u levels, %zu nodes pending%s\n",
            graph.levels_completed(), graph.pending_frontier().size(),
            resume_hint.c_str());
  }
  if (options.reduction != Reduction::kNone && complete &&
      !graph.nodes().empty()) {
    const std::uint64_t full_estimate = graph.full_node_estimate();
    appendf(&result.human, "  reduction=%s: >=%llu full-graph nodes, ratio %.2fx\n",
            reduction_name(graph.reduction()),
            static_cast<unsigned long long>(full_estimate),
            static_cast<double>(full_estimate) /
                static_cast<double>(graph.nodes().size()));
  }

  result.report.task = task.name;
  result.report.params = {
      {"threads", std::to_string(options.threads)},
      // How many cores the host actually had: bench rows that claim a
      // parallel speedup are uninterpretable without it.
      {"threads_available",
       std::to_string(std::thread::hardware_concurrency())},
      {"engine", "\"" + std::string(engine_name(options.engine)) + "\""},
      {"max_nodes", std::to_string(options.max_nodes)},
      {"allow_truncation", options.allow_truncation ? "true" : "false"},
      {"reduction",
       "\"" + std::string(reduction_name(options.reduction)) + "\""},
  };
  if (!spec.resumed_from.empty()) {
    result.report.params.emplace_back(
        "resumed_from", "\"" + obs::json_escape(spec.resumed_from) + "\"");
  }
  {
    obs::JsonWriter w;
    w.begin_object();
    w.key("nodes");
    w.value_uint(graph.nodes().size());
    w.key("transitions");
    w.value_uint(graph.transition_count());
    w.key("max_depth");
    w.value_uint(max_depth);
    w.key("truncated");
    w.value_bool(graph.truncated());
    w.key("interrupted");
    w.value_bool(graph.interrupted());
    w.key("levels_completed");
    w.value_uint(graph.levels_completed());
    w.key("reduction");
    w.value_string(reduction_name(graph.reduction()));
    // The engine that actually ran (kAuto resolves to one of the concrete
    // engines; auto_switched records a mid-run serial->parallel handoff).
    w.key("engine_used");
    w.value_string(engine_name(graph.engine_used()));
    w.key("auto_switched");
    w.value_bool(graph.auto_switched());
    // Only on complete graphs (see `complete` above): the schema validator
    // rejects a ratio sitting next to truncated/interrupted = true.
    if (complete && !graph.nodes().empty()) {
      const std::uint64_t full_estimate = graph.full_node_estimate();
      w.key("nodes_full_estimate");
      w.value_uint(full_estimate);
      w.key("reduction_ratio");
      w.value_double(static_cast<double>(full_estimate) /
                     static_cast<double>(graph.nodes().size()));
    }
    w.end_object();
    result.report.sections.emplace_back("explorer", std::move(w).str());
  }
  result.report_valid = true;

  if (graph.interrupted()) {
    result.exit_code = 4;
  } else if (graph.truncated()) {
    result.exit_code = 3;
    result.error = task.name +
                   ": truncated at --max-nodes: property verdicts that rely "
                   "on absence (no violation found) are unsound on a partial "
                   "graph";
  }
  return result;
}

FuzzTaskRunResult run_fuzz_task(const NamedTask& task,
                                const FuzzTaskSpec& spec) {
  FuzzTaskRunResult result;
  if (spec.validate) {
    if (const Status valid = validate_fuzz_options(spec.options);
        !valid.is_ok()) {
      result.exit_code = 2;
      result.error = valid.to_string();
      return result;
    }
  }

  result.fuzz = fuzz_named_task(task, spec.options);
  const FuzzReport& report = result.fuzz;
  result.work_items = report.runs_executed;

  appendf(&result.human,
          "%s: %llu runs (%llu terminated), %llu distinct fingerprints, "
          "%llu interesting, %llu mutated, %zu violations "
          "(%llu shrink replays)%s\n",
          task.name.c_str(),
          static_cast<unsigned long long>(report.runs_executed),
          static_cast<unsigned long long>(report.runs_terminated),
          static_cast<unsigned long long>(report.distinct_fingerprints),
          static_cast<unsigned long long>(report.interesting_runs),
          static_cast<unsigned long long>(report.mutated_runs),
          report.violations.size(),
          static_cast<unsigned long long>(report.shrink_replays),
          report.interrupted ? " [interrupted]" : "");
  if (report.interrupted && !spec.options.checkpoint_path.empty() &&
      report.checkpoint_error.empty()) {
    appendf(&result.human, "  resume with --resume %s\n",
            spec.options.checkpoint_path.c_str());
  }

  // An interrupted campaign is an incomplete sample: don't judge the task
  // expectation on it (exit 4 below instead).
  const bool expected =
      report.interrupted || (report.ok() != task.expect_violation);
  if (!expected) {
    result.error = task.name + ": unexpected outcome (" +
                   (task.expect_violation ? "broken" : "correct") + " task, " +
                   std::to_string(report.violations.size()) + " violations)";
  }

  result.report.task = task.name;
  result.report.params = {
      {"runs", std::to_string(spec.options.runs)},
      {"seed", std::to_string(report.seed)},
      {"threads", std::to_string(report.threads)},
      {"engine", "\"" + report.engine + "\""},
      {"max_violations", std::to_string(spec.options.max_violations)},
  };
  if (!spec.resumed_from.empty()) {
    result.report.params.emplace_back(
        "resumed_from", "\"" + obs::json_escape(spec.resumed_from) + "\"");
  }
  {
    obs::JsonWriter w;
    w.begin_object();
    w.key("runs_executed");
    w.value_uint(report.runs_executed);
    w.key("runs_terminated");
    w.value_uint(report.runs_terminated);
    w.key("distinct_fingerprints");
    w.value_uint(report.distinct_fingerprints);
    w.key("interesting_runs");
    w.value_uint(report.interesting_runs);
    w.key("mutated_runs");
    w.value_uint(report.mutated_runs);
    w.key("shrink_replays");
    w.value_uint(report.shrink_replays);
    w.key("violations");
    w.value_uint(report.violations.size());
    w.key("interrupted");
    w.value_bool(report.interrupted);
    w.key("expected_outcome");
    w.value_bool(expected);
    w.end_object();
    result.report.sections.emplace_back("fuzz", std::move(w).str());
  }
  result.report_valid = true;

  if (!report.checkpoint_error.empty()) {
    result.exit_code = 1;
    result.error = task.name + ": checkpoint write failed: " +
                   report.checkpoint_error;
  } else if (report.interrupted) {
    result.exit_code = 4;
  } else if (!expected) {
    result.exit_code = 1;
  }
  return result;
}

TaskRunResult run_check_task(const NamedTask& task, const CheckTaskSpec& spec) {
  TaskRunResult result;
  auto report_or =
      task.distinguished_pid >= 0
          ? check_dac_task(task.protocol, task.distinguished_pid, task.inputs,
                           spec.options)
          : check_k_agreement_task(task.protocol, task.k, task.inputs,
                                   spec.options);
  if (!report_or.is_ok()) {
    result.exit_code = 1;
    result.error = task.name + ": " + report_or.status().to_string();
    return result;
  }
  const TaskReport& report = report_or.value();
  result.work_items = report.node_count;
  // A partial check certifies only the explored region, so a clean partial
  // report is not judged against the expectation (exit 3 below).
  const bool expected = report.partial ||
                        (report.ok() != task.expect_violation);

  appendf(&result.human, "%s: checked %llu nodes, %llu transitions, "
          "%zu violations%s\n",
          task.name.c_str(),
          static_cast<unsigned long long>(report.node_count),
          static_cast<unsigned long long>(report.transition_count),
          report.violations.size(), report.partial ? " (partial)" : "");
  for (const PropertyViolation& v : report.violations) {
    appendf(&result.human, "  %s: %s\n", v.property.c_str(), v.detail.c_str());
  }
  if (!expected) {
    result.error = task.name + ": unexpected verdict (" +
                   (task.expect_violation ? "broken" : "correct") + " task, " +
                   std::to_string(report.violations.size()) + " violations)";
  }

  result.report.task = task.name;
  result.report.params = {
      {"threads", std::to_string(spec.options.explore.threads)},
      {"engine",
       "\"" + std::string(engine_name(spec.options.explore.engine)) + "\""},
      {"max_nodes", std::to_string(spec.options.explore.max_nodes)},
      {"reduction",
       "\"" + std::string(reduction_name(spec.options.explore.reduction)) +
           "\""},
      {"solo_node_bound", std::to_string(spec.options.solo_node_bound)},
      {"max_violations", std::to_string(spec.options.max_violations)},
  };
  {
    obs::JsonWriter w;
    w.begin_object();
    w.key("nodes");
    w.value_uint(report.node_count);
    w.key("transitions");
    w.value_uint(report.transition_count);
    w.key("full_node_estimate");
    w.value_uint(report.full_node_estimate);
    w.key("partial");
    w.value_bool(report.partial);
    w.key("violations");
    w.value_uint(report.violations.size());
    w.key("ok");
    w.value_bool(report.ok());
    w.key("expected_outcome");
    w.value_bool(expected);
    // Property/detail pairs are deterministic (canonical-graph scan order);
    // traces are omitted — replay them with the corpus tools if needed.
    w.key("findings");
    w.begin_array();
    for (const PropertyViolation& v : report.violations) {
      w.begin_object();
      w.key("property");
      w.value_string(v.property);
      w.key("detail");
      w.value_string(v.detail);
      w.end_object();
    }
    w.end_array();
    w.end_object();
    result.report.sections.emplace_back("check", std::move(w).str());
  }
  result.report_valid = true;

  if (report.partial) {
    result.exit_code = 3;
    result.error = task.name +
                   ": truncated exploration: property verdicts that rely on "
                   "absence (no violation found) are unsound on a partial "
                   "graph";
  } else if (!expected) {
    result.exit_code = 1;
  }
  return result;
}

}  // namespace lbsa::modelcheck
