// Exhaustive reachability analysis over protocol configurations.
//
// The Explorer enumerates *every* configuration reachable from the initial
// one — over all interleavings of process steps and all nondeterministic
// object outcomes — and materializes the transition graph. This is the
// machine-checkable counterpart of the paper's proof language: "configuration
// C reachable from I", "history H applicable to C", "step e_p of p".
//
// Optionally, exploration can be *augmented* with a path flag: a small
// integer folded along every path (e.g. "has any process other than p taken
// a step yet?"), in which case graph nodes are (configuration, flag) pairs.
// The DAC Nontriviality property needs exactly this, since it constrains the
// history that leads to a configuration, not the configuration itself.
#ifndef LBSA_MODELCHECK_EXPLORER_H_
#define LBSA_MODELCHECK_EXPLORER_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "base/status.h"
#include "modelcheck/cancel.h"
#include "sim/config.h"
#include "sim/protocol.h"
#include "sim/symmetry.h"

namespace lbsa::modelcheck {

struct ExploreCheckpoint;  // modelcheck/checkpoint.h

namespace internal {
// Grants the explorer's shared canonical-renumbering machinery (explorer.cc)
// access to ConfigGraph internals; both parallel engines build and trim
// graphs through it.
struct GraphBuilder;
}  // namespace internal

// Which exploration engine to run.
//   kSerial — the reference implementation; defines the canonical graph.
//   kParallel — level-synchronous BFS over a worker pool with batched
//     lock-free interning; best for wide frontiers, and the only parallel
//     engine with level boundaries (periodic checkpoints).
//   kWorkStealing — per-worker deques with chunked stealing; keeps every
//     worker busy on deep/narrow graphs where whole BFS levels are smaller
//     than the pool. No level boundaries: periodic checkpointing is
//     rejected, and interruption trims the result back to the deepest
//     complete level (see docs/checking.md, "Engine selection").
//   kAuto — starts serial and, once the explored region outgrows a
//     threshold where parallel overhead pays for itself, hands the run to
//     kParallel (wide frontier) or kWorkStealing (narrow) via an in-memory
//     checkpoint. Small graphs never leave the serial fast path.
// All engines produce bit-identical complete graphs (canonical
// renumbering); the explicit values exist for equivalence testing and
// benchmarking.
enum class ExploreEngine {
  kAuto = 0,
  kSerial,
  kParallel,
  kWorkStealing,
};

// Stable short name for CLI flags and run reports: "auto", "serial",
// "parallel", "workstealing".
const char* engine_name(ExploreEngine engine);
// Inverse of engine_name(); INVALID_ARGUMENT on anything else.
StatusOr<ExploreEngine> parse_engine(const std::string& name);

// State-space reductions (docs/checking.md, "State-space reduction"):
//   kSymmetry — intern only the lexicographically-minimal pid renaming of
//     each configuration, exploring the quotient graph under the protocol's
//     declared symmetry() group. No-op for protocols with a trivial group.
//   kPor — partial-order reduction: when some process's next action is a
//     deterministic, purely-local step (decide/abort — no shared-object
//     invoke) that also preserves the path flag, expand only the smallest
//     such process. Local steps commute with every other step and strictly
//     shrink the enabled set, so reachable decision patterns (and therefore
//     property verdicts and valence universes) are preserved.
//   kBoth — compose the two.
// Complete reduced graphs remain bit-identical across engines and thread
// counts; the cross-validation suite certifies verdict equivalence against
// the unreduced graph.
enum class Reduction {
  kNone = 0,
  kSymmetry,
  kPor,
  kBoth,
};

// Stable short name for CLI flags and run reports: "none", "symmetry",
// "por", "both".
const char* reduction_name(Reduction reduction);
// Inverse of reduction_name(); INVALID_ARGUMENT on anything else.
StatusOr<Reduction> parse_reduction(const std::string& name);

struct ExploreOptions {
  // Hard cap on distinct (config, flag) nodes; exceeding it returns
  // RESOURCE_EXHAUSTED — unless allow_truncation is set, in which case a
  // partial graph is returned with ConfigGraph::truncated() == true.
  // Truncated nodes are KEPT in the graph (so every emitted edge has a
  // valid target and every node replays from the root) but never expanded.
  std::uint64_t max_nodes = 5'000'000;
  // Opt-in partial exploration for instances beyond exhaustive reach.
  // Soundness note: on a truncated graph, property VIOLATIONS found are
  // real (every node is reachable), but their absence certifies only the
  // explored region; valence analysis is likewise a lower bound on
  // reachable decisions. Additionally, a truncated PARALLEL run keeps a
  // schedule-dependent prefix: which nodes fall inside the budget depends
  // on thread interleaving, so truncated graphs are not bit-identical
  // across engines or thread counts (complete graphs always are).
  bool allow_truncation = false;
  // Worker threads for the parallel engine; 0 = hardware_concurrency.
  // Exploration is deterministic for every thread count: the parallel
  // engine renumbers its result into the canonical serial BFS order, so a
  // complete graph is bit-identical to the serial engine's.
  int threads = 0;
  ExploreEngine engine = ExploreEngine::kAuto;
  // Which state-space reduction to apply (see Reduction above).
  Reduction reduction = Reduction::kNone;
  // Required when combining a flag_fn with symmetry reduction on a protocol
  // whose symmetry group is non-trivial: asserts the flag function is
  // invariant under the group (folding a renamed step yields the same flag
  // as folding the original, for every group element). explore() returns
  // INVALID_ARGUMENT if a flag_fn meets an active symmetry reduction
  // without this declaration.
  bool flag_fn_symmetric = false;

  // --- canonicalization cache (symmetry reduction only) ---
  // Per-worker byte budget for the lossy orbit cache that short-circuits
  // repeated canonical searches (sim::CanonCache; docs/checking.md, "State-
  // space reduction"). 0 disables caching. Hits are exact (full raw-key
  // verify), so the cache changes only speed, never the produced graph —
  // the engine-equivalence matrix runs with it on and off and asserts
  // bit-identical results. Activity is published as the `explore.canon.*`
  // counters.
  std::size_t canon_cache_bytes = std::size_t{4} << 20;  // 4 MiB per worker
  // Optional shared pool keeping per-worker caches warm across repeated
  // explorations (the hierarchy sweep's per-cell checks and cross-checks
  // set one per sweep). Null = a private pool per explore() call.
  // Universe-fingerprint gating (CanonCache::ensure_universe) makes sharing
  // across different protocols safe: a universe switch clears, a rerun of
  // the same universe stays warm.
  std::shared_ptr<sim::CanonCachePool> canon_cache_pool;
  // Reuse a pre-built canonicalizer instead of constructing a fresh one
  // (the hierarchy sweep re-checks the same instance under several modes,
  // and the soundness gate + group enumeration are pure functions of the
  // (protocol, spec) pair). Honored only if it was built for this exact
  // protocol instance with the protocol's declared spec; anything else
  // falls back to constructing.
  std::shared_ptr<const sim::Canonicalizer> canonicalizer;

  // --- run lifecycle (docs/checking.md, "Long runs") ---
  // All three engines poll cancel/deadline INSIDE levels, at work-chunk
  // boundaries (every kChunk expansions per worker), so a trip stops the
  // run promptly even mid-way through a wide level. Stopping still only
  // ever happens at a BFS level boundary — the one point that preserves the
  // canonical-prefix guarantee: the serial engine rolls partially-expanded
  // work back to the last completed level, the level-synchronous parallel
  // engine trims the partial level before renumbering, and the
  // work-stealing engine trims its result back to the deepest
  // fully-expanded level. An interrupted graph is therefore bit-identical
  // to the corresponding prefix of an uninterrupted run, for every engine
  // and thread count (complete levels only). max_levels and periodic
  // checkpoints remain level-boundary conditions.
  //
  // Cooperative cancellation. Non-owning; may be tripped from a signal
  // handler. When it fires, explore() returns an *interrupted* graph
  // (ConfigGraph::interrupted()) rather than an error: everything explored
  // is valid, and pending_frontier() says where to pick up.
  const CancelToken* cancel = nullptr;
  // Steady-clock deadline; Deadline{} (the default) means none.
  Deadline deadline = {};
  // Deterministic interruption: stop (interrupted) once this many NEW
  // levels have completed this session; 0 = unlimited. This is the testable
  // stand-in for a wall-clock deadline — same code path, no timing races.
  // The work-stealing engine (no level boundaries) treats this as an
  // expansion-depth bound and may settle on FEWER completed levels (it
  // trims to the deepest serial-identical prefix); read
  // ConfigGraph::levels_completed() for the level actually reached.
  std::uint32_t max_levels = 0;
  // When non-empty, a resumable checkpoint is written here (atomically) at
  // every interruption, and additionally every checkpoint_every_levels
  // completed levels when that is non-zero. A failed checkpoint write fails
  // the run (a long run silently losing its safety net is the worse bug).
  // Periodic checkpoints need level boundaries: combining a non-zero
  // checkpoint_every_levels with engine == kWorkStealing is
  // INVALID_ARGUMENT, and kAuto then completes the run on the
  // level-synchronous parallel engine.
  std::string checkpoint_path;
  std::uint32_t checkpoint_every_levels = 0;
  // Label echoed into checkpoints and error messages (task name); not
  // semantically validated.
  std::string checkpoint_label;
  // Resume from a previously-written checkpoint (non-owning). The options
  // above must shape the same graph (reduction, budget, flag function,
  // initial flag — enforced via the checkpoint fingerprint, returning
  // FAILED_PRECONDITION on mismatch); engine/threads may differ freely.
  const ExploreCheckpoint* resume = nullptr;
};

// One directed edge of the configuration graph.
struct Edge {
  std::uint32_t to = 0;   // target node id
  std::int32_t pid = -1;  // process that stepped
  sim::Action::Kind kind = sim::Action::Kind::kInvoke;

  friend bool operator==(const Edge&, const Edge&) = default;
};

// A node: a reachable configuration (plus the optional path flag).
struct Node {
  sim::Config config;
  std::int64_t flag = 0;
  std::uint32_t depth = 0;  // BFS depth (shortest history length)
};

// The fully-materialized reachable graph.
class ConfigGraph {
 public:
  const std::vector<Node>& nodes() const { return nodes_; }
  const std::vector<std::vector<Edge>>& edges() const { return edges_; }
  std::uint32_t root() const { return 0; }
  std::uint64_t transition_count() const { return transition_count_; }
  // True iff exploration stopped at the node budget (allow_truncation).
  bool truncated() const { return truncated_; }
  // True iff exploration stopped early at a level boundary (cancellation,
  // deadline, or ExploreOptions::max_levels). The graph is the exact
  // canonical prefix of the complete graph: every node of depth <
  // levels_completed() is fully expanded, and pending_frontier() lists the
  // next level's nodes (present, unexpanded) in canonical id order.
  bool interrupted() const { return interrupted_; }
  // Number of fully-expanded BFS levels (== max depth + 1 when complete).
  std::uint32_t levels_completed() const { return levels_completed_; }
  // Nodes awaiting expansion; empty unless interrupted().
  const std::vector<std::uint32_t>& pending_frontier() const {
    return pending_frontier_;
  }
  // Discovering-edge parent pointers, parallel to nodes(); parents()[0] is
  // unused (the root has no parent).
  const std::vector<std::pair<std::uint32_t, sim::Step>>& parents() const {
    return parents_;
  }
  // Canonicalizing pid permutations of each node's discovering edge; empty
  // unless symmetry reduction was active (see the private field's comment).
  const std::vector<std::vector<std::uint8_t>>& discovery_perms() const {
    return discovery_perms_;
  }
  // The reduction mode this graph was explored under.
  Reduction reduction() const { return reduction_; }
  // The engine that actually produced this graph (never kAuto: an auto run
  // reports the engine it settled on). With auto_switched(), lets reports
  // attribute nodes/sec to the code path that did the work.
  ExploreEngine engine_used() const { return engine_used_; }
  // True iff this was a kAuto run that outgrew the serial probe and handed
  // off to a parallel engine mid-run.
  bool auto_switched() const { return auto_switched_; }
  // Non-null iff symmetry reduction was active (non-trivial group).
  const std::shared_ptr<const sim::Canonicalizer>& canonicalizer() const {
    return canonicalizer_;
  }
  // Σ orbit_size(node) over all nodes. With symmetry reduction on a
  // complete graph this is exactly the unreduced node count (each orbit
  // contributes all its members); under POR it is a lower bound, since POR
  // removes whole configurations rather than orbit mates. Without symmetry
  // it equals nodes().size().
  std::uint64_t full_node_estimate() const;

  // Reconstructs one shortest step sequence from the root to node id
  // (for counterexample reporting). On a symmetry-reduced graph the
  // recorded steps live in representative space; this lifts them back to a
  // concrete run of the unreduced protocol — the returned steps replay from
  // initial_config() through apply_step()/ScriptedAdversary verbatim, and
  // the lift is certified (LBSA_CHECK) to land on a renaming of node id's
  // stored configuration.
  std::vector<sim::Step> path_to(std::uint32_t id) const;

 private:
  friend class Explorer;
  friend struct internal::GraphBuilder;
  std::vector<Node> nodes_;
  std::vector<std::vector<Edge>> edges_;
  // Parent pointers for path reconstruction: (parent id, step taken).
  std::vector<std::pair<std::uint32_t, sim::Step>> parents_;
  // Only populated under symmetry reduction (size == nodes_.size()): the
  // pid permutation applied when canonicalizing the discovering edge's
  // successor into nodes_[i].config (empty = identity). path_to() composes
  // these to lift representative-space steps to concrete ones.
  std::vector<std::vector<std::uint8_t>> discovery_perms_;
  std::uint64_t transition_count_ = 0;
  bool truncated_ = false;
  bool interrupted_ = false;
  std::uint32_t levels_completed_ = 0;
  std::vector<std::uint32_t> pending_frontier_;
  Reduction reduction_ = Reduction::kNone;
  ExploreEngine engine_used_ = ExploreEngine::kSerial;
  bool auto_switched_ = false;
  std::shared_ptr<const sim::Canonicalizer> canonicalizer_;
  // Kept for path lifting and orbit sizing on reduced graphs.
  std::shared_ptr<const sim::Protocol> lift_protocol_;
};

class Explorer {
 public:
  // Folds a step into the path flag (must be monotone for the graph to be
  // meaningful: nodes reached with different flags are distinct nodes).
  // Must be a pure function of its arguments: the parallel engine calls it
  // concurrently from worker threads.
  using FlagFn =
      std::function<std::int64_t(std::int64_t flag, const sim::Step& step)>;

  explicit Explorer(std::shared_ptr<const sim::Protocol> protocol)
      : protocol_(std::move(protocol)) {}

  // BFS from the initial configuration. On success the graph is complete:
  // every reachable (config, flag) node and every transition is present.
  // Node ids, edge order, depths and parent pointers are canonical (serial
  // BFS discovery order) regardless of options.threads/engine, so complete
  // graphs from any configuration of the explorer compare bit-identical.
  StatusOr<ConfigGraph> explore(const ExploreOptions& options = {},
                                FlagFn flag_fn = nullptr,
                                std::int64_t initial_flag = 0) const;

  const sim::Protocol& protocol() const { return *protocol_; }

 private:
  // The serial reference engine: defines the canonical graph (ids in BFS
  // discovery order). sym is non-null iff symmetry reduction is active;
  // fingerprint stamps any checkpoint written (see checkpoint.h).
  // switch_after_nodes > 0 is the kAuto probe mode: once the graph holds at
  // least that many nodes at a level boundary, return the interrupted
  // prefix (no checkpoint written) with *switched set, for a parallel
  // engine to resume.
  StatusOr<ConfigGraph> explore_serial(const ExploreOptions& options,
                                       const FlagFn& flag_fn,
                                       std::int64_t initial_flag,
                                       const sim::Canonicalizer* sym,
                                       bool por,
                                       std::uint64_t fingerprint,
                                       std::uint64_t switch_after_nodes = 0,
                                       bool* switched = nullptr) const;
  // Level-synchronous parallel engine over `threads` workers; renumbers its
  // result into the canonical order before returning.
  StatusOr<ConfigGraph> explore_parallel(const ExploreOptions& options,
                                         int threads, const FlagFn& flag_fn,
                                         std::int64_t initial_flag,
                                         const sim::Canonicalizer* sym,
                                         bool por,
                                         std::uint64_t fingerprint) const;
  // Work-stealing engine: per-worker deques, chunked stealing, a pending
  // counter for termination. On interruption the canonical result is
  // trimmed back to the deepest serial-identical prefix.
  StatusOr<ConfigGraph> explore_work_stealing(const ExploreOptions& options,
                                              int threads,
                                              const FlagFn& flag_fn,
                                              std::int64_t initial_flag,
                                              const sim::Canonicalizer* sym,
                                              bool por,
                                              std::uint64_t fingerprint) const;

  std::shared_ptr<const sim::Protocol> protocol_;
};

}  // namespace lbsa::modelcheck

#endif  // LBSA_MODELCHECK_EXPLORER_H_
