// Exhaustive reachability analysis over protocol configurations.
//
// The Explorer enumerates *every* configuration reachable from the initial
// one — over all interleavings of process steps and all nondeterministic
// object outcomes — and materializes the transition graph. This is the
// machine-checkable counterpart of the paper's proof language: "configuration
// C reachable from I", "history H applicable to C", "step e_p of p".
//
// Optionally, exploration can be *augmented* with a path flag: a small
// integer folded along every path (e.g. "has any process other than p taken
// a step yet?"), in which case graph nodes are (configuration, flag) pairs.
// The DAC Nontriviality property needs exactly this, since it constrains the
// history that leads to a configuration, not the configuration itself.
#ifndef LBSA_MODELCHECK_EXPLORER_H_
#define LBSA_MODELCHECK_EXPLORER_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <unordered_map>
#include <vector>

#include "base/status.h"
#include "sim/config.h"
#include "sim/protocol.h"

namespace lbsa::modelcheck {

struct ExploreOptions {
  // Hard cap on distinct (config, flag) nodes; exceeding it returns
  // RESOURCE_EXHAUSTED — unless allow_truncation is set, in which case a
  // partial graph is returned with ConfigGraph::truncated() == true.
  std::uint64_t max_nodes = 5'000'000;
  // Opt-in partial exploration for instances beyond exhaustive reach.
  // Soundness note: on a truncated graph, property VIOLATIONS found are
  // real (every node is reachable), but their absence certifies only the
  // explored region; valence analysis is likewise a lower bound on
  // reachable decisions.
  bool allow_truncation = false;
};

// One directed edge of the configuration graph.
struct Edge {
  std::uint32_t to = 0;   // target node id
  std::int32_t pid = -1;  // process that stepped
  sim::Action::Kind kind = sim::Action::Kind::kInvoke;
};

// A node: a reachable configuration (plus the optional path flag).
struct Node {
  sim::Config config;
  std::int64_t flag = 0;
  std::uint32_t depth = 0;  // BFS depth (shortest history length)
};

// The fully-materialized reachable graph.
class ConfigGraph {
 public:
  const std::vector<Node>& nodes() const { return nodes_; }
  const std::vector<std::vector<Edge>>& edges() const { return edges_; }
  std::uint32_t root() const { return 0; }
  std::uint64_t transition_count() const { return transition_count_; }
  // True iff exploration stopped at the node budget (allow_truncation).
  bool truncated() const { return truncated_; }

  // Reconstructs one shortest step sequence from the root to node id
  // (for counterexample reporting).
  std::vector<sim::Step> path_to(std::uint32_t id) const;

 private:
  friend class Explorer;
  std::vector<Node> nodes_;
  std::vector<std::vector<Edge>> edges_;
  // Parent pointers for path reconstruction: (parent id, step taken).
  std::vector<std::pair<std::uint32_t, sim::Step>> parents_;
  std::uint64_t transition_count_ = 0;
  bool truncated_ = false;
};

class Explorer {
 public:
  // Folds a step into the path flag (must be monotone for the graph to be
  // meaningful: nodes reached with different flags are distinct nodes).
  using FlagFn =
      std::function<std::int64_t(std::int64_t flag, const sim::Step& step)>;

  explicit Explorer(std::shared_ptr<const sim::Protocol> protocol)
      : protocol_(std::move(protocol)) {}

  // BFS from the initial configuration. On success the graph is complete:
  // every reachable (config, flag) node and every transition is present.
  StatusOr<ConfigGraph> explore(const ExploreOptions& options = {},
                                FlagFn flag_fn = nullptr,
                                std::int64_t initial_flag = 0) const;

  const sim::Protocol& protocol() const { return *protocol_; }

 private:
  std::shared_ptr<const sim::Protocol> protocol_;
};

}  // namespace lbsa::modelcheck

#endif  // LBSA_MODELCHECK_EXPLORER_H_
