#include "modelcheck/task_check.h"

#include <algorithm>
#include <set>
#include <unordered_map>

#include "base/check.h"
#include "base/hashing.h"

namespace lbsa::modelcheck {
namespace {

struct KeyHash {
  std::size_t operator()(const std::vector<std::int64_t>& key) const {
    return static_cast<std::size_t>(hash_words(key));
  }
};

std::vector<std::string> format_path(const sim::Protocol& protocol,
                                     const ConfigGraph& graph,
                                     std::uint32_t id) {
  std::vector<std::string> out;
  for (const sim::Step& step : graph.path_to(id)) {
    out.push_back(step.to_string(protocol));
  }
  return out;
}

// Collects the distinct decided values in a configuration.
std::vector<Value> decided_values(const sim::Config& config) {
  std::vector<Value> out;
  for (const sim::ProcessState& ps : config.procs) {
    if (ps.decided()) out.push_back(ps.decision);
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

// ---------------------------------------------------------------------------
// Solo-run termination: from `config`, process pid runs alone; over every
// nondeterministic object outcome it must reach kDecided (or kAborted when
// allow_abort) without revisiting a configuration. Memoized per pid across
// all start configurations.
// ---------------------------------------------------------------------------

class SoloChecker {
 public:
  SoloChecker(const sim::Protocol& protocol, int pid, bool allow_abort,
              std::uint64_t node_bound)
      : protocol_(protocol),
        pid_(pid),
        allow_abort_(allow_abort),
        node_bound_(node_bound) {}

  // Returns true iff every solo continuation of pid from `config`
  // terminates acceptably. On failure fills *detail.
  bool terminates(const sim::Config& config, std::string* detail) {
    nodes_visited_ = 0;
    return dfs(config, detail);
  }

 private:
  enum class Memo : char { kInProgress, kGood };

  bool dfs(const sim::Config& config, std::string* detail) {
    const sim::ProcessState& ps = config.procs[static_cast<size_t>(pid_)];
    if (ps.decided()) return true;
    if (ps.aborted()) {
      if (allow_abort_) return true;
      *detail = "process p" + std::to_string(pid_) +
                " aborted in a solo run where only decide is allowed";
      return false;
    }
    if (ps.crashed()) {
      *detail = "process p" + std::to_string(pid_) + " crashed mid-check";
      return false;
    }
    if (++nodes_visited_ > node_bound_) {
      *detail = "solo-run node budget exceeded for p" + std::to_string(pid_);
      return false;
    }

    const auto key = config.encode();
    auto [it, inserted] = memo_.try_emplace(key, Memo::kInProgress);
    if (!inserted) {
      if (it->second == Memo::kGood) return true;
      // Revisiting an in-progress configuration: pid can cycle solo forever.
      *detail = "process p" + std::to_string(pid_) +
                " can take infinitely many solo steps without terminating";
      return false;
    }

    std::vector<sim::Successor> succs;
    sim::enumerate_successors(protocol_, config, pid_, &succs);
    for (const sim::Successor& succ : succs) {
      if (!dfs(succ.config, detail)) {
        // Leave the entry as kInProgress-erased so other paths re-examine.
        memo_.erase(key);
        return false;
      }
    }
    memo_[key] = Memo::kGood;
    return true;
  }

  const sim::Protocol& protocol_;
  int pid_;
  bool allow_abort_;
  std::uint64_t node_bound_;
  std::uint64_t nodes_visited_ = 0;
  std::unordered_map<std::vector<std::int64_t>, Memo, KeyHash> memo_;
};

// ---------------------------------------------------------------------------
// Wait-freedom: process pid violates wait-freedom iff the configuration
// graph, restricted to nodes where pid is still running, contains a cycle
// with at least one pid-step on it — i.e. pid can take infinitely many steps
// without deciding. Detected via iterative Tarjan SCC.
// ---------------------------------------------------------------------------

class WaitFreedomChecker {
 public:
  WaitFreedomChecker(const ConfigGraph& graph, int pid)
      : graph_(graph), pid_(pid) {}

  // Returns a node on a violating cycle, or nodes().size() if none.
  std::uint32_t find_violation() {
    const size_t n = graph_.nodes().size();
    index_.assign(n, kUnvisited);
    lowlink_.assign(n, 0);
    on_stack_.assign(n, 0);
    scc_id_.assign(n, kUnvisited);
    for (std::uint32_t v = 0; v < n; ++v) {
      if (in_subgraph(v) && index_[v] == kUnvisited) tarjan(v);
    }
    // A pid-edge inside one SCC witnesses the cycle.
    for (std::uint32_t u = 0; u < n; ++u) {
      if (!in_subgraph(u)) continue;
      for (const Edge& e : graph_.edges()[u]) {
        if (e.pid != pid_ || !in_subgraph(e.to)) continue;
        if (scc_id_[u] == scc_id_[e.to] &&
            (u != e.to || true /* self-loop is a cycle */)) {
          // Single-node SCC without self-loop: scc equal but no cycle.
          if (u == e.to || scc_size_[scc_id_[u]] > 1) return u;
        }
      }
    }
    return static_cast<std::uint32_t>(n);
  }

 private:
  static constexpr std::uint32_t kUnvisited = ~0u;

  bool in_subgraph(std::uint32_t v) const {
    return graph_.nodes()[v].config.procs[static_cast<size_t>(pid_)].running();
  }

  void tarjan(std::uint32_t root) {
    struct Frame {
      std::uint32_t v;
      size_t edge_pos;
    };
    std::vector<Frame> frames{{root, 0}};
    begin_node(root);
    while (!frames.empty()) {
      Frame& f = frames.back();
      const auto& edges = graph_.edges()[f.v];
      bool descended = false;
      while (f.edge_pos < edges.size()) {
        const Edge& e = edges[f.edge_pos++];
        if (!in_subgraph(e.to)) continue;
        if (index_[e.to] == kUnvisited) {
          begin_node(e.to);
          frames.push_back({e.to, 0});
          descended = true;
          break;
        }
        if (on_stack_[e.to]) {
          lowlink_[f.v] = std::min(lowlink_[f.v], index_[e.to]);
        }
      }
      if (descended) continue;
      // f.v is finished.
      const std::uint32_t v = f.v;
      frames.pop_back();
      if (!frames.empty()) {
        lowlink_[frames.back().v] =
            std::min(lowlink_[frames.back().v], lowlink_[v]);
      }
      if (lowlink_[v] == index_[v]) {
        const std::uint32_t id = static_cast<std::uint32_t>(scc_size_.size());
        scc_size_.push_back(0);
        std::uint32_t w;
        do {
          w = stack_.back();
          stack_.pop_back();
          on_stack_[w] = 0;
          scc_id_[w] = id;
          ++scc_size_[id];
        } while (w != v);
      }
    }
  }

  void begin_node(std::uint32_t v) {
    index_[v] = lowlink_[v] = next_index_++;
    stack_.push_back(v);
    on_stack_[v] = 1;
  }

  const ConfigGraph& graph_;
  int pid_;
  std::uint32_t next_index_ = 0;
  std::vector<std::uint32_t> index_, lowlink_, scc_id_;
  std::vector<std::uint32_t> scc_size_;
  std::vector<char> on_stack_;
  std::vector<std::uint32_t> stack_;
};

void add_violation(TaskReport* report, const TaskCheckOptions& options,
                   std::string property, std::string detail,
                   std::vector<std::string> trace) {
  if (static_cast<int>(report->violations.size()) >= options.max_violations) {
    return;
  }
  report->violations.push_back(PropertyViolation{
      std::move(property), std::move(detail), std::move(trace)});
}

bool report_full(const TaskReport& report, const TaskCheckOptions& options) {
  return static_cast<int>(report.violations.size()) >= options.max_violations;
}

}  // namespace

bool TaskReport::violates(const std::string& property) const {
  return std::any_of(violations.begin(), violations.end(),
                     [&](const PropertyViolation& v) {
                       return v.property == property;
                     });
}

std::string TaskReport::to_string() const {
  std::string out = "nodes=" + std::to_string(node_count) +
                    " transitions=" + std::to_string(transition_count);
  if (partial) out += " (PARTIAL exploration)";
  if (ok()) return out + " — all properties hold";
  for (const PropertyViolation& v : violations) {
    out += "\nVIOLATION [" + v.property + "]: " + v.detail;
    for (const std::string& s : v.trace) out += "\n    " + s;
  }
  return out;
}

StatusOr<TaskReport> check_k_agreement_task(
    std::shared_ptr<const sim::Protocol> protocol, int k,
    const std::vector<Value>& inputs, const TaskCheckOptions& options) {
  LBSA_CHECK(k >= 1);
  LBSA_CHECK(static_cast<int>(inputs.size()) == protocol->process_count());

  Explorer explorer(protocol);
  StatusOr<ConfigGraph> graph_or = explorer.explore(options.explore);
  if (!graph_or.is_ok()) return graph_or.status();
  const ConfigGraph& graph = graph_or.value();

  TaskReport report;
  report.node_count = graph.nodes().size();
  report.transition_count = graph.transition_count();
  report.full_node_estimate = graph.full_node_estimate();
  report.partial = graph.truncated();

  const std::set<Value> input_set(inputs.begin(), inputs.end());

  for (std::uint32_t id = 0; id < graph.nodes().size(); ++id) {
    const sim::Config& config = graph.nodes()[id].config;
    const std::vector<Value> decided = decided_values(config);
    if (static_cast<int>(decided.size()) > k) {
      add_violation(&report, options, "agreement",
                    std::to_string(decided.size()) +
                        " distinct decisions with k=" + std::to_string(k),
                    format_path(*protocol, graph, id));
    }
    for (Value v : decided) {
      if (!input_set.contains(v)) {
        add_violation(&report, options, "validity",
                      "decided value " + value_to_string(v) +
                          " was never proposed",
                      format_path(*protocol, graph, id));
        break;
      }
    }
    for (size_t pid = 0; pid < config.procs.size(); ++pid) {
      if (config.procs[pid].aborted()) {
        add_violation(&report, options, "no-abort",
                      "process p" + std::to_string(pid) +
                          " aborted in a k-set-agreement task",
                      format_path(*protocol, graph, id));
      }
    }
    if (report_full(report, options)) return report;
  }

  for (int pid = 0; pid < protocol->process_count(); ++pid) {
    WaitFreedomChecker checker(graph, pid);
    const std::uint32_t bad = checker.find_violation();
    if (bad < graph.nodes().size()) {
      add_violation(
          &report, options, "termination",
          "process p" + std::to_string(pid) +
              " can take infinitely many steps without deciding",
          format_path(*protocol, graph, bad));
      if (report_full(report, options)) return report;
    }
  }
  return report;
}

StatusOr<TaskReport> check_dac_task(
    std::shared_ptr<const sim::Protocol> protocol, int distinguished_pid,
    const std::vector<Value>& inputs, const TaskCheckOptions& options) {
  const int n = protocol->process_count();
  LBSA_CHECK(static_cast<int>(inputs.size()) == n);
  LBSA_CHECK(distinguished_pid >= 0 && distinguished_pid < n);

  // Path flag: has any process other than p taken a step yet?
  Explorer explorer(protocol);
  auto flag_fn = [distinguished_pid](std::int64_t flag,
                                     const sim::Step& step) -> std::int64_t {
    return (step.pid != distinguished_pid) ? 1 : flag;
  };
  ExploreOptions explore = options.explore;
  if (explore.reduction == Reduction::kSymmetry ||
      explore.reduction == Reduction::kBoth) {
    const sim::SymmetrySpec spec = protocol->symmetry();
    if (!spec.trivial()) {
      // The flag depends only on "pid == p", so it is group-invariant
      // exactly when every group element fixes p. A spec that renames p
      // would silently conflate p-solo histories with others — reject it.
      if (!spec.is_singleton(distinguished_pid)) {
        return invalid_argument(
            "check_dac_task: symmetry reduction requires the declared "
            "symmetry group to fix the distinguished process p" +
            std::to_string(distinguished_pid) +
            " (its orbit must be a singleton)");
      }
      explore.flag_fn_symmetric = true;
    }
  }
  StatusOr<ConfigGraph> graph_or =
      explorer.explore(explore, flag_fn, /*initial_flag=*/0);
  if (!graph_or.is_ok()) return graph_or.status();
  const ConfigGraph& graph = graph_or.value();

  TaskReport report;
  report.node_count = graph.nodes().size();
  report.transition_count = graph.transition_count();
  report.full_node_estimate = graph.full_node_estimate();
  report.partial = graph.truncated();

  for (std::uint32_t id = 0; id < graph.nodes().size(); ++id) {
    const Node& node = graph.nodes()[id];
    const sim::Config& config = node.config;
    const std::vector<Value> decided = decided_values(config);

    // Agreement: at most one distinct decision.
    if (decided.size() > 1) {
      add_violation(&report, options, "agreement",
                    "two distinct decisions",
                    format_path(*protocol, graph, id));
    }

    // Validity: every decided value is the input of a process that has not
    // aborted (abort is irrevocable, and decisions persist, so checking
    // every reachable configuration is equivalent to the per-execution
    // statement).
    for (Value v : decided) {
      bool witnessed = false;
      for (size_t pid = 0; pid < config.procs.size(); ++pid) {
        if (inputs[pid] == v && !config.procs[pid].aborted()) {
          witnessed = true;
          break;
        }
      }
      if (!witnessed) {
        add_violation(&report, options, "validity",
                      "decided value " + value_to_string(v) +
                          " has no non-aborting proposer",
                      format_path(*protocol, graph, id));
      }
    }

    // Only the distinguished process may abort.
    for (size_t pid = 0; pid < config.procs.size(); ++pid) {
      if (config.procs[pid].aborted() &&
          static_cast<int>(pid) != distinguished_pid) {
        add_violation(&report, options, "only-p-aborts",
                      "process p" + std::to_string(pid) +
                          " aborted but is not distinguished",
                      format_path(*protocol, graph, id));
      }
    }

    // Nontriviality: p aborted although no other process ever took a step.
    if (config.procs[static_cast<size_t>(distinguished_pid)].aborted() &&
        node.flag == 0) {
      add_violation(&report, options, "nontriviality",
                    "p aborted in a run where no other process took a step",
                    format_path(*protocol, graph, id));
    }
    if (report_full(report, options)) return report;
  }

  // Termination (a): from every reachable configuration, p running solo
  // decides or aborts. Termination (b): every q != p running solo decides.
  for (int pid = 0; pid < n; ++pid) {
    const bool is_p = (pid == distinguished_pid);
    SoloChecker solo(*protocol, pid, /*allow_abort=*/is_p,
                     options.solo_node_bound);
    for (std::uint32_t id = 0; id < graph.nodes().size(); ++id) {
      std::string detail;
      if (!solo.terminates(graph.nodes()[id].config, &detail)) {
        add_violation(&report, options,
                      is_p ? "termination(a)" : "termination(b)", detail,
                      format_path(*protocol, graph, id));
        break;  // one witness per process suffices
      }
    }
    if (report_full(report, options)) return report;
  }
  return report;
}

}  // namespace lbsa::modelcheck
