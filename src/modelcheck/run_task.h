// Reentrant entry points for the named-task workloads behind explorer_cli,
// fuzz_shrink_cli, and lbsa_serverd. Each takes an options struct (no
// globals, no flag parsing, no process-wide state beyond the obs sinks the
// caller arms) and returns everything a transport needs to answer: the CLI
// exit code, the human summary exactly as the CLIs print it, and the filled
// RunReport skeleton (task/params/sections).
//
// The split of responsibilities:
//   - run_*_task: run the workload, format the deterministic outputs.
//   - the caller: wall-clock timing, SIGINT wiring, heartbeat lifecycle,
//     checkpoint file reading (error wording is transport-specific), obs
//     finalization (ObsCli::finish for the CLIs, deterministic
//     serialization for the serve result cache), corpus file emission.
//
// Everything in TaskRunResult except `error` strings is deterministic for a
// fixed request (explore graphs are engine/thread independent; coverage
// fuzz is seed-deterministic), which is what lets the serve layer cache
// result bytes and replay them byte-identically.
#ifndef LBSA_MODELCHECK_RUN_TASK_H_
#define LBSA_MODELCHECK_RUN_TASK_H_

#include <string>

#include "modelcheck/corpus.h"
#include "modelcheck/explorer.h"
#include "modelcheck/fuzz.h"
#include "modelcheck/task_check.h"
#include "obs/report.h"

namespace lbsa::modelcheck {

// Shared CLI exit-code convention (documented in each tool's header):
//   0  complete, expected outcome
//   1  error or unexpected outcome
//   2  usage / invalid request
//   3  complete but truncated or partial (absence verdicts unsound)
//   4  interrupted at a resumable boundary
struct TaskRunResult {
  int exit_code = 0;
  // Human-readable summary lines (newline-terminated), byte-identical to
  // what the CLI prints to stdout — minus transport-owned lines such as
  // the wall-clock "elapsed" line.
  std::string human;
  // Non-empty when exit_code != 0 explains why (stderr wording).
  std::string error;
  // task/params/sections filled iff the workload ran; tool, wall_seconds,
  // and the metrics snapshot are left for the caller to fill.
  obs::RunReport report;
  bool report_valid = false;
  // Headline work volume (explore/check: graph nodes; fuzz: runs executed)
  // for transport-side rate lines — wall-clock never enters the result.
  std::uint64_t work_items = 0;
};

struct ExploreTaskSpec {
  // Lifecycle knobs (cancel/deadline/checkpoint/resume) included; when
  // resuming, `options.resume` must point at a checkpoint that outlives the
  // call (the caller read and error-reported it).
  ExploreOptions options;
  // Echoed into the report's "resumed_from" param when non-empty.
  std::string resumed_from;
};

TaskRunResult run_explore_task(const NamedTask& task,
                               const ExploreTaskSpec& spec);

struct FuzzTaskSpec {
  FuzzOptions options;
  std::string resumed_from;
  // Reject blind-engine checkpoint/resume/stop_after_runs combinations
  // (validate_fuzz_options) as exit 2 instead of crashing; the CLIs
  // pre-validate with their own flag wording, the server relies on this.
  bool validate = true;
};

// The FuzzReport rides along so the CLI can emit corpus files from the
// violations after the obs artifacts are finalized.
struct FuzzTaskRunResult : TaskRunResult {
  FuzzReport fuzz;
};

FuzzTaskRunResult run_fuzz_task(const NamedTask& task,
                                const FuzzTaskSpec& spec);

struct CheckTaskSpec {
  TaskCheckOptions options;
};

// Machine-checks the task's properties over the full configuration graph
// (check_k_agreement_task / check_dac_task, dispatched on the task shape)
// and judges the verdict against the task's expect_violation bit.
TaskRunResult run_check_task(const NamedTask& task, const CheckTaskSpec& spec);

}  // namespace lbsa::modelcheck

#endif  // LBSA_MODELCHECK_RUN_TASK_H_
