// Versioned binary checkpoints for long-running checks.
//
// A checkpoint snapshots an exploration (or fuzz campaign) at a quiescent
// point — a BFS level boundary, or a fuzz run boundary — with everything
// needed to resume later and finish with a result provably identical to an
// uninterrupted run:
//
//   * ExploreCheckpoint — the canonical partial graph (node configurations
//     as their invertible word encodings, flags, depths, parents, discovery
//     permutations, edge lists), the explicit next-level frontier, and the
//     run parameters that shape the graph.
//   * FuzzCheckpoint — the coverage-guided fuzzer's RNG stream position,
//     global fingerprint set, interesting-schedule pool, aggregate
//     counters, and raw (unshrunk) violations.
//
// Every file carries a schema version and a run *fingerprint* (a hash of
// the protocol's initial configuration and the graph-shaping options), so a
// checkpoint replayed against the wrong task, reduction, or budget is
// rejected with FAILED_PRECONDITION and a message naming the mismatch
// instead of silently producing a wrong graph. Corruption (bad magic,
// truncation, checksum mismatch, malformed payload) is INVALID_ARGUMENT.
//
// On-disk format: a stream of little-endian int64 words —
//   [magic, schema version, payload word count, payload hash, payload...]
// — written atomically (temp file in the same directory + rename), so a
// crash mid-write never leaves a half-written checkpoint at the target
// path. The payload hash is hash_words over the payload, making bit rot
// and truncation detectable without trusting any payload field.
#ifndef LBSA_MODELCHECK_CHECKPOINT_H_
#define LBSA_MODELCHECK_CHECKPOINT_H_

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "base/status.h"
#include "modelcheck/explorer.h"
#include "modelcheck/fuzz.h"
#include "sim/config.h"
#include "sim/protocol.h"

namespace lbsa::modelcheck {

// Bump when the serialized layout changes; readers reject other versions.
inline constexpr std::uint32_t kCheckpointSchemaVersion = 1;

// A paused exploration: the canonical graph prefix (every node of depth
// <= levels_completed expanded; frontier = the next level, unexpanded, in
// canonical id order) plus the options that shaped it. Node ids in
// `frontier`, `parents` and `edges` index the node arrays.
struct ExploreCheckpoint {
  // --- identity ---
  // Hash of the initial configuration and every graph-shaping option; see
  // explore_fingerprint(). Engine/thread choices are deliberately excluded
  // (the graph is invariant to them), so a checkpoint written by the serial
  // engine resumes under the parallel one and vice versa.
  std::uint64_t fingerprint = 0;
  // Informative label (task name) for error messages; not validated.
  std::string task_label;

  // --- run parameters (echoed for error messages; fingerprint-protected) ---
  Reduction reduction = Reduction::kNone;
  std::int64_t initial_flag = 0;
  bool has_flag_fn = false;
  std::uint64_t max_nodes = 0;
  bool allow_truncation = false;

  // --- progress ---
  bool truncated = false;
  std::uint64_t transition_count = 0;
  // Every node with depth <= levels_completed has been expanded (or hit the
  // truncation budget and is permanently non-expandable).
  std::uint32_t levels_completed = 0;

  // --- the canonical partial graph (parallel arrays, one slot per node) ---
  std::vector<std::vector<std::int64_t>> node_words;  // Config::encode()
  std::vector<std::int64_t> node_flags;
  std::vector<std::uint32_t> node_depths;
  std::vector<std::uint32_t> parents;      // parents[0] unused (root)
  std::vector<sim::Step> parent_steps;     // parallel to `parents`
  std::vector<std::vector<std::uint8_t>> discovery_perms;  // may be empty
  std::vector<std::vector<Edge>> edges;

  // Node ids awaiting expansion (ascending). Nodes past the truncation
  // budget are NOT listed: they are never expanded.
  std::vector<std::uint32_t> frontier;
};

// A paused coverage-guided fuzz campaign, snapshotted between runs and
// before any of the next run's RNG draws. Violations are stored raw;
// shrinking runs once, at campaign end, so a resumed report is
// byte-identical to an uninterrupted one.
struct FuzzCheckpoint {
  std::uint64_t fingerprint = 0;  // see fuzz_fingerprint()
  std::string task_label;

  std::uint64_t runs_completed = 0;
  std::array<std::uint64_t, 4> rng_state{};

  // Global coverage set, sorted ascending (only membership matters; sorting
  // makes the file deterministic).
  std::vector<std::uint64_t> global_fingerprints;
  // Interesting-schedule pool in eviction order (oldest first).
  std::vector<std::string> pool;

  // Aggregate counters so far.
  std::uint64_t runs_terminated = 0;
  std::uint64_t interesting_runs = 0;
  std::uint64_t mutated_runs = 0;

  struct RawViolation {
    std::string property;
    std::string detail;
    std::uint64_t run_seed = 0;
    std::string schedule;
    std::uint64_t raw_steps = 0;
  };
  std::vector<RawViolation> violations;
};

// Fingerprint of everything that shapes an exploration's graph: the
// protocol's initial configuration and process count, reduction mode,
// flag-function presence and initial flag, node budget and truncation
// policy. Excludes threads/engine (graph-invariant).
std::uint64_t explore_fingerprint(const sim::Protocol& protocol,
                                  const ExploreOptions& options,
                                  bool has_flag_fn, std::int64_t initial_flag);

// Fingerprint of everything that shapes a coverage-guided fuzz campaign's
// run stream: the protocol's initial configuration plus every FuzzOptions
// field that feeds the RNG-driven loop.
std::uint64_t fuzz_fingerprint(const sim::Protocol& protocol,
                               const FuzzOptions& options);

// FAILED_PRECONDITION if `cp` cannot resume a campaign shaped by `options`
// on `protocol`: blind engine requested, fingerprint mismatch (different
// task, seed, or campaign-shaping option), or a checkpoint claiming more
// completed runs than the budget allows.
Status validate_fuzz_resume(const sim::Protocol& protocol,
                            const FuzzOptions& options,
                            const FuzzCheckpoint& cp);

// Atomic write (same-directory temp file + rename). Errors are I/O only.
Status write_explore_checkpoint(const ExploreCheckpoint& checkpoint,
                                const std::string& path);
Status write_fuzz_checkpoint(const FuzzCheckpoint& checkpoint,
                             const std::string& path);

// INVALID_ARGUMENT on corruption (bad magic/size/checksum/payload) or a
// schema-version mismatch; NOT_FOUND if the file cannot be opened.
// Fingerprint checks happen at the point of use (explore()/fuzz), where the
// expected value is known, and yield FAILED_PRECONDITION.
StatusOr<ExploreCheckpoint> read_explore_checkpoint(const std::string& path);
StatusOr<FuzzCheckpoint> read_fuzz_checkpoint(const std::string& path);

}  // namespace lbsa::modelcheck

#endif  // LBSA_MODELCHECK_CHECKPOINT_H_
