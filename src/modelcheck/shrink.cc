#include "modelcheck/shrink.h"

#include <algorithm>

#include "base/hashing.h"
#include "obs/obs.h"
#include "sim/simulation.h"

namespace lbsa::modelcheck {

ReplayOutcome run_schedule_lenient(
    const std::shared_ptr<const sim::Protocol>& protocol,
    const std::vector<sim::ScriptedAdversary::Choice>& schedule,
    const SafetyPredicate& judge, std::vector<std::uint64_t>* step_hashes) {
  ReplayOutcome out;
  sim::Simulation simulation(protocol);
  const int n = simulation.process_count();
  std::vector<std::int64_t> encoded;  // reused hash buffer
  for (const sim::ScriptedAdversary::Choice& choice : schedule) {
    if (choice.pid < 0 || choice.pid >= n) continue;
    if (choice.crash) {
      if (!simulation.config().procs[static_cast<size_t>(choice.pid)]
               .running()) {
        continue;  // crashing a terminated process is a no-op: drop it
      }
      simulation.crash(choice.pid);
      out.effective.push_back({choice.pid, 0, true});
      continue;
    }
    if (!simulation.config().enabled(choice.pid)) continue;
    const int outcomes =
        sim::outcome_count(*protocol, simulation.config(), choice.pid);
    const int outcome =
        (choice.outcome >= 0 && choice.outcome < outcomes) ? choice.outcome
                                                           : 0;
    simulation.step(choice.pid, outcome);
    out.effective.push_back({choice.pid, outcome, false});
    if (step_hashes != nullptr) {
      simulation.config().encode_into(&encoded);
      step_hashes->push_back(hash_words(encoded));
    }
    auto [property, detail] = judge(simulation.config());
    if (!property.empty()) {
      out.property = std::move(property);
      out.detail = std::move(detail);
      break;
    }
  }
  return out;
}

std::vector<sim::ScriptedAdversary::Choice> shrink_schedule(
    const std::shared_ptr<const sim::Protocol>& protocol,
    const std::vector<sim::ScriptedAdversary::Choice>& schedule,
    const SafetyPredicate& judge, const std::string& property,
    const ShrinkOptions& options, ShrinkStats* stats) {
  using Choice = sim::ScriptedAdversary::Choice;
  ShrinkStats local;
  ShrinkStats& s = stats != nullptr ? *stats : local;
  s = ShrinkStats{};  // caller-provided stats may be reused across calls
  s.raw_steps = schedule.size();

  // Normalize: truncate at the first violating step and strictify. If the
  // violation does not reproduce at all, hand the input back untouched.
  ReplayOutcome base = run_schedule_lenient(protocol, schedule, judge);
  s.replays = 1;
  LBSA_OBS_COUNTER_ADD("shrink.replays", 1);
  if (base.property != property) {
    s.shrunk_steps = schedule.size();
    return schedule;
  }
  std::vector<Choice> current = std::move(base.effective);

  // Replays `candidate`; on same-property violation adopts its effective
  // schedule as the new current and reports success.
  auto attempt = [&](std::vector<Choice> candidate) -> bool {
    if (s.replays >= options.max_replays) return false;
    ++s.replays;
    LBSA_OBS_COUNTER_ADD("shrink.replays", 1);
    ReplayOutcome r = run_schedule_lenient(protocol, candidate, judge);
    if (r.property != property) return false;
    current = std::move(r.effective);
    return true;
  };

  bool progress = true;
  while (progress && s.rounds < options.max_rounds &&
         s.replays < options.max_replays) {
    progress = false;
    ++s.rounds;
    // One phase span per ddmin round; round counts are deterministic, so
    // these participate in trace-count determinism comparisons.
    LBSA_OBS_SPAN(round_span, "shrink.round", obs::kCatPhase, /*lane=*/0);
    round_span.arg("round", static_cast<std::int64_t>(s.rounds));
    round_span.arg("size", static_cast<std::int64_t>(current.size()));

    // Pass 1: drop crash events the violation does not need.
    for (std::size_t i = 0; i < current.size();) {
      if (current[i].crash) {
        std::vector<Choice> candidate = current;
        candidate.erase(candidate.begin() + static_cast<std::ptrdiff_t>(i));
        if (attempt(std::move(candidate))) {
          progress = true;
          continue;  // current changed; re-examine index i
        }
      }
      ++i;
    }

    // Pass 2: ddmin chunk removal, halving chunk sizes down to single steps.
    for (std::size_t chunk = std::max<std::size_t>(current.size() / 2, 1);;
         chunk /= 2) {
      std::size_t start = 0;
      while (start < current.size() && s.replays < options.max_replays) {
        std::vector<Choice> candidate = current;
        const std::size_t len = std::min(chunk, current.size() - start);
        candidate.erase(
            candidate.begin() + static_cast<std::ptrdiff_t>(start),
            candidate.begin() + static_cast<std::ptrdiff_t>(start + len));
        if (attempt(std::move(candidate))) {
          progress = true;  // current shrank; retry the same start offset
        } else {
          start += chunk;
        }
      }
      if (chunk == 1) break;
    }

    // Pass 3: canonicalize nondeterministic outcome choices to 0.
    for (std::size_t i = 0; i < current.size(); ++i) {
      if (!current[i].crash && current[i].outcome != 0) {
        std::vector<Choice> candidate = current;
        candidate[i].outcome = 0;
        if (attempt(std::move(candidate))) progress = true;
      }
    }
  }

  s.shrunk_steps = current.size();
  LBSA_OBS_COUNTER_ADD("shrink.rounds", s.rounds);
  LBSA_OBS_COUNTER_ADD("shrink.schedules", 1);
  LBSA_OBS_HISTOGRAM_OBSERVE("shrink.raw_steps", s.raw_steps);
  LBSA_OBS_HISTOGRAM_OBSERVE("shrink.shrunk_steps", s.shrunk_steps);
  return current;
}

}  // namespace lbsa::modelcheck
