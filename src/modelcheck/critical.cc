#include "modelcheck/critical.h"

namespace lbsa::modelcheck {

CriticalInfo analyze_pending_steps(const sim::Protocol& protocol,
                                   const ConfigGraph& graph,
                                   std::uint32_t node) {
  CriticalInfo info;
  info.node = node;
  const sim::Config& config = graph.nodes()[node].config;

  for (int pid = 0; pid < static_cast<int>(config.procs.size()); ++pid) {
    if (!config.enabled(pid)) continue;
    const sim::Action action =
        protocol.next_action(pid, config.procs[static_cast<size_t>(pid)]);
    PendingStep step;
    step.pid = pid;
    if (action.kind == sim::Action::Kind::kInvoke) {
      step.object_index = action.object_index;
      const auto& type =
          *protocol.objects()[static_cast<size_t>(action.object_index)];
      step.description = type.name() + "#" +
                         std::to_string(action.object_index) + "." +
                         type.operation_to_string(action.op);
    } else {
      step.object_index = -1;
      step.description = action.kind == sim::Action::Kind::kDecide
                             ? "decide(" + value_to_string(action.decision) +
                                   ")"
                             : "abort";
    }
    info.pending.push_back(std::move(step));
  }

  info.all_on_same_object = !info.pending.empty();
  for (const PendingStep& step : info.pending) {
    if (step.object_index < 0 ||
        (info.common_object >= 0 && step.object_index != info.common_object)) {
      info.all_on_same_object = false;
      break;
    }
    info.common_object = step.object_index;
  }
  if (info.all_on_same_object) {
    info.common_object_type =
        protocol.objects()[static_cast<size_t>(info.common_object)]->name();
  } else {
    info.common_object = -1;
  }
  return info;
}

std::vector<CriticalInfo> analyze_critical_configurations(
    const sim::Protocol& protocol, const ConfigGraph& graph,
    const ValenceAnalyzer& analyzer) {
  std::vector<CriticalInfo> out;
  for (std::uint32_t node : analyzer.critical_nodes()) {
    out.push_back(analyze_pending_steps(protocol, graph, node));
  }
  return out;
}

}  // namespace lbsa::modelcheck
