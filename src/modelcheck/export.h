// Graphviz (DOT) export of configuration graphs, with optional valence
// coloring — turns the bivalency proofs' pictures into actual pictures.
// Multivalent nodes render amber, univalent nodes take per-value hues,
// decision-free nodes grey; critical configurations get a bold border.
#ifndef LBSA_MODELCHECK_EXPORT_H_
#define LBSA_MODELCHECK_EXPORT_H_

#include <string>

#include "modelcheck/explorer.h"
#include "modelcheck/valence.h"

namespace lbsa::modelcheck {

struct DotOptions {
  // Nodes beyond this count are elided with a summary note (DOT files above
  // a few thousand nodes stop being look-at-able).
  std::size_t max_nodes = 2000;
  bool include_step_labels = true;
};

// Renders graph (optionally valence-annotated; pass nullptr to skip the
// analysis coloring) as a DOT digraph.
std::string to_dot(const sim::Protocol& protocol, const ConfigGraph& graph,
                   const ValenceAnalyzer* analyzer,
                   const DotOptions& options = {});

}  // namespace lbsa::modelcheck

#endif  // LBSA_MODELCHECK_EXPORT_H_
