// Sharded concurrent interning: word-vector keys -> stable 32-bit ids,
// safe for simultaneous use by many explorer worker threads.
//
// Design (after the distributed ChecksumHashMap idiom — hash-routed
// buckets, stored fingerprints, checksum-then-verify reads):
//   * 64 shards, each an independently mutex-guarded open-addressing table.
//     A 2-word hash of the key routes: the low word picks the shard and the
//     probe start, the high word is the stored fingerprint. Both words must
//     match before the full key is compared, so probe misses never touch
//     key memory and fingerprint collisions are verified, never trusted.
//   * Keys are pooled in a per-shard arena (one flat vector<int64_t>)
//     instead of one heap vector per key — interning N configurations costs
//     N slot entries + the concatenated words, not N allocations.
//   * Ids are assigned from per-shard counters: id = (local << 6) | shard.
//     Ids are therefore stable, unique, and dense per shard, but NOT
//     globally consecutive — the explorer's canonical renumbering pass
//     (explorer.cc) turns them into the serial BFS numbering.
//
// Thread-safety contract: intern() may be called concurrently from any
// number of threads. payload() / id_bound() are quiescent-only: callers
// must establish happens-before (e.g. the explorer's per-level barrier or
// thread join) between the last intern() and the first payload() read.
#ifndef LBSA_MODELCHECK_INTERNING_H_
#define LBSA_MODELCHECK_INTERNING_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <mutex>
#include <span>
#include <vector>

#include "base/check.h"
#include "base/hashing.h"

namespace lbsa::modelcheck {

template <typename Payload>
class ShardedInternTable {
 public:
  static constexpr int kShardBits = 6;
  static constexpr std::uint32_t kShardCount = 1u << kShardBits;

  struct Result {
    std::uint32_t id = 0;
    bool inserted = false;
  };

  // Quiescent-only occupancy / probe statistics, for observability.
  // `probes` counts slot inspections across all intern() calls — its value
  // depends on insertion order, so metrics derived from it must be
  // registered volatile.
  struct Stats {
    std::uint64_t entries = 0;
    std::uint64_t slots = 0;
    std::uint64_t probes = 0;
    std::uint64_t max_shard_entries = 0;
  };

  ShardedInternTable() = default;
  ShardedInternTable(const ShardedInternTable&) = delete;
  ShardedInternTable& operator=(const ShardedInternTable&) = delete;

  // Returns the id of `key`, interning it (and constructing its payload via
  // `make()`, under the shard lock) on first sight.
  template <typename MakePayload>
  Result intern(std::span<const std::int64_t> key, MakePayload&& make) {
    const Hash128 h = hash_words_128(key);
    Shard& shard = shards_[h.lo & (kShardCount - 1)];
    std::lock_guard<std::mutex> lock(shard.mu);
    if ((shard.used + 1) * 10 >= shard.slots.size() * 7) grow(shard);

    const std::size_t mask = shard.slots.size() - 1;
    std::size_t idx = (h.lo >> kShardBits) & mask;
    while (true) {
      shard.probes.fetch_add(1, std::memory_order_relaxed);
      Slot& slot = shard.slots[idx];
      if (slot.id == kEmpty) {
        // New key: append to the arena, assign the next local id.
        const std::uint32_t local =
            static_cast<std::uint32_t>(shard.payloads.size());
        LBSA_CHECK_MSG(local < (1u << (32 - kShardBits)),
                       "intern table shard id space exhausted");
        slot.hash = h;
        slot.pos = shard.arena.size();
        slot.len = static_cast<std::uint32_t>(key.size());
        slot.id = (local << kShardBits) |
                  static_cast<std::uint32_t>(h.lo & (kShardCount - 1));
        shard.arena.insert(shard.arena.end(), key.begin(), key.end());
        shard.payloads.push_back(make());
        ++shard.used;
        size_.fetch_add(1, std::memory_order_relaxed);
        return Result{slot.id, true};
      }
      if (slot.hash == h && slot.len == key.size() &&
          std::equal(key.begin(), key.end(),
                     shard.arena.begin() +
                         static_cast<std::ptrdiff_t>(slot.pos))) {
        return Result{slot.id, false};
      }
      idx = (idx + 1) & mask;
    }
  }

  // Number of interned keys. Exact at quiescence; a racy read is a lower
  // bound on keys already fully inserted (good enough for budget checks).
  std::uint64_t size() const { return size_.load(std::memory_order_relaxed); }

  // Quiescent-only: payload of an id previously returned by intern().
  Payload& payload(std::uint32_t id) {
    return shards_[id & (kShardCount - 1)].payloads[id >> kShardBits];
  }
  const Payload& payload(std::uint32_t id) const {
    return shards_[id & (kShardCount - 1)].payloads[id >> kShardBits];
  }

  // Quiescent-only: aggregate occupancy and probe-length statistics.
  Stats stats() const {
    Stats out;
    for (const Shard& shard : shards_) {
      out.entries += shard.used;
      out.slots += shard.slots.size();
      out.probes += shard.probes.load(std::memory_order_relaxed);
      if (shard.used > out.max_shard_entries) out.max_shard_entries = shard.used;
    }
    return out;
  }

  // Quiescent-only: exclusive upper bound on assigned ids (the id space has
  // shard-striped gaps; use this to size id-indexed side arrays).
  std::uint32_t id_bound() const {
    std::size_t max_locals = 0;
    for (const Shard& shard : shards_) {
      if (shard.payloads.size() > max_locals) max_locals = shard.payloads.size();
    }
    return static_cast<std::uint32_t>(max_locals << kShardBits);
  }

 private:
  static constexpr std::uint32_t kEmpty = 0xffffffffu;

  struct Slot {
    Hash128 hash;           // full 2-word hash (lo routes, hi fingerprints)
    std::uint64_t pos = 0;  // key offset in the shard arena
    std::uint32_t len = 0;  // key length in words
    std::uint32_t id = kEmpty;
  };

  struct Shard {
    std::mutex mu;
    std::vector<Slot> slots = std::vector<Slot>(kInitialSlots);
    std::vector<std::int64_t> arena;    // pooled key words
    std::deque<Payload> payloads;       // local index -> payload (stable refs)
    std::size_t used = 0;
    // Slot inspections. Written under mu, but stats() reads it WITHOUT the
    // shard lock (it is advertised quiescent-only yet callers poll it from
    // monitoring threads) — relaxed atomic so a concurrent read is a torn-
    // free lower bound instead of a data race.
    std::atomic<std::uint64_t> probes{0};
  };

  static constexpr std::size_t kInitialSlots = 64;  // power of two

  static void grow(Shard& shard) {
    std::vector<Slot> old = std::move(shard.slots);
    shard.slots.assign(old.size() * 2, Slot{});
    const std::size_t mask = shard.slots.size() - 1;
    for (const Slot& slot : old) {
      if (slot.id == kEmpty) continue;
      std::size_t idx = (slot.hash.lo >> kShardBits) & mask;
      while (shard.slots[idx].id != kEmpty) idx = (idx + 1) & mask;
      shard.slots[idx] = slot;
    }
  }

  Shard shards_[kShardCount];
  std::atomic<std::uint64_t> size_{0};
};

}  // namespace lbsa::modelcheck

#endif  // LBSA_MODELCHECK_INTERNING_H_
