// Randomized schedule fuzzing: safety checking for instances beyond
// exhaustive reach. Runs many seeded adversarial executions (uniform and
// burst-biased scheduling), evaluates the task's safety predicates after
// every step, and reports each violation with a REPLAYABLE schedule (the
// sim/trace.h text format) — so a fuzz finding becomes a deterministic
// regression test.
//
// Complements the exhaustive checker: violations found are real; a clean
// fuzz report is evidence, not proof (use check_*_task for proofs at small
// sizes).
#ifndef LBSA_MODELCHECK_FUZZ_H_
#define LBSA_MODELCHECK_FUZZ_H_

#include <memory>
#include <string>
#include <vector>

#include "base/status.h"
#include "sim/protocol.h"

namespace lbsa::modelcheck {

struct FuzzOptions {
  std::uint64_t runs = 1000;
  std::uint64_t max_steps_per_run = 100'000;
  std::uint64_t seed = 1;
  // Probability that a run uses the burst adversary (keeps scheduling the
  // same process for a geometric burst) instead of uniform — bursts find
  // solo-dependent violations that uniform schedules rarely hit.
  double burst_fraction = 0.5;
  // Stop after this many violations.
  int max_violations = 4;
};

struct FuzzViolation {
  std::string property;          // "agreement" | "validity" | "only-p-aborts"
  std::string detail;
  std::uint64_t run_seed = 0;
  std::string schedule;          // sim/trace.h format; replayable
};

struct FuzzReport {
  std::vector<FuzzViolation> violations;
  std::uint64_t runs_executed = 0;
  std::uint64_t runs_terminated = 0;  // all processes terminated in budget

  bool ok() const { return violations.empty(); }
  bool violates(const std::string& property) const;
};

// Fuzzes the safety half of k-set agreement (agreement, validity, no
// aborts). Termination is NOT judged (randomized runs can time out
// legitimately); runs_terminated reports how many finished.
FuzzReport fuzz_k_agreement(std::shared_ptr<const sim::Protocol> protocol,
                            int k, const std::vector<Value>& inputs,
                            const FuzzOptions& options = {});

// Fuzzes the safety half of n-DAC (agreement, validity w.r.t. non-aborting
// proposers, only-p-aborts).
FuzzReport fuzz_dac(std::shared_ptr<const sim::Protocol> protocol,
                    int distinguished_pid, const std::vector<Value>& inputs,
                    const FuzzOptions& options = {});

}  // namespace lbsa::modelcheck

#endif  // LBSA_MODELCHECK_FUZZ_H_
