// Randomized schedule fuzzing: safety checking for instances beyond
// exhaustive reach. Runs many seeded adversarial executions, evaluates the
// task's safety predicates after every step, and reports each violation
// with a REPLAYABLE schedule (the sim/trace.h text format) — both the raw
// finding and a delta-debugged minimal version (modelcheck/shrink.h) — so
// a fuzz finding becomes a deterministic regression test.
//
// Two modes:
//   * blind (default) — independent uniform and burst-biased runs; scales
//     across FuzzOptions::threads with byte-identical reports for every
//     thread count (runs are pre-seeded, results merged in run order, and
//     the early-stop cutoff is computed deterministically).
//   * coverage-guided (FuzzOptions::coverage_guided) — per-step
//     configuration fingerprints (base/hashing.h) feed a pool of
//     "interesting" schedules (runs that reached a never-seen
//     configuration); most runs then mutate a pool entry — splice two
//     schedules, insert a solo burst, inject a crash — replay the mutated
//     prefix, and continue randomly to termination, instead of starting
//     from scratch. Single-threaded by design (the pool evolves run to
//     run); still fully determined by FuzzOptions::seed.
//
// Complements the exhaustive checker: violations found are real; a clean
// fuzz report is evidence, not proof (use check_*_task for proofs at small
// sizes).
#ifndef LBSA_MODELCHECK_FUZZ_H_
#define LBSA_MODELCHECK_FUZZ_H_

#include <memory>
#include <string>
#include <vector>

#include "base/status.h"
#include "modelcheck/cancel.h"
#include "modelcheck/shrink.h"
#include "sim/protocol.h"

namespace lbsa::modelcheck {

struct FuzzCheckpoint;  // modelcheck/checkpoint.h

struct FuzzOptions {
  std::uint64_t runs = 1000;
  std::uint64_t max_steps_per_run = 100'000;
  std::uint64_t seed = 1;
  // Probability that a fresh run uses the burst adversary (keeps scheduling
  // the same process for a geometric burst) instead of uniform — bursts
  // find solo-dependent violations that uniform schedules rarely hit.
  double burst_fraction = 0.5;
  // Stop after this many violations.
  int max_violations = 4;

  // Worker threads for blind fuzzing: 1 = serial, 0 = one per hardware
  // thread. The report is byte-identical for every thread count. Ignored
  // (serial) in coverage-guided mode.
  int threads = 1;

  // Coverage guidance (see file comment).
  bool coverage_guided = false;
  // Capacity of the interesting-schedule pool (oldest entries evicted).
  std::uint64_t pool_limit = 64;
  // Fraction of coverage-mode runs that mutate a pool entry (the rest are
  // fresh adversary runs; all runs are fresh while the pool is empty).
  double mutation_fraction = 0.75;
  // Per-run cap on recorded distinct fingerprints (bounds memory; both
  // modes use the same cap, so coverage comparisons stay apples-to-apples).
  std::uint64_t max_fingerprints_per_run = 4096;

  // Shrink every violation (delta debugging; see modelcheck/shrink.h).
  // When disabled, shrunk_schedule is a copy of the raw schedule.
  bool shrink_violations = true;
  ShrinkOptions shrink;

  // --- campaign lifecycle (docs/checking.md, "Long runs") ---
  // Cooperative cancellation and a steady-clock deadline, polled at run
  // boundaries (between runs). An interrupted campaign still returns a
  // valid report over the runs completed (FuzzReport::interrupted).
  // Honored by both engines. Non-owning; may be tripped from a signal
  // handler.
  const CancelToken* cancel = nullptr;
  Deadline deadline = {};
  // Deterministic interruption for tests: stop (interrupted) once this many
  // NEW runs have completed this session; 0 = unlimited. Coverage engine
  // only (the blind engine's claim order is thread-scheduling dependent).
  std::uint64_t stop_after_runs = 0;
  // When non-empty, a resumable checkpoint (RNG stream position, coverage
  // set, schedule pool, raw violations — see checkpoint.h) is written here
  // at every interruption, and additionally every checkpoint_every_runs
  // completed runs when that is non-zero. Coverage engine only. A failed
  // write stops the campaign with FuzzReport::checkpoint_error set.
  std::string checkpoint_path;
  std::uint64_t checkpoint_every_runs = 0;
  // Label echoed into checkpoints and error messages (task name).
  std::string checkpoint_label;
  // Resume a coverage campaign from a checkpoint (non-owning). Must pass
  // validate_fuzz_resume (see checkpoint.h); the resumed campaign replays
  // deterministically — its final report is byte-identical to an
  // uninterrupted run with the same options.
  const FuzzCheckpoint* resume = nullptr;
};

struct FuzzViolation {
  std::string property;  // "agreement" | "validity" | "no-abort" |
                         // "only-p-aborts" — same names as task_check.h
  std::string detail;
  std::uint64_t run_seed = 0;
  std::string schedule;          // raw finding; sim/trace.h format, replayable
  std::string shrunk_schedule;   // minimized finding; same format, replayable
  std::uint64_t raw_steps = 0;
  std::uint64_t shrunk_steps = 0;
};

struct FuzzReport {
  std::vector<FuzzViolation> violations;
  std::uint64_t runs_executed = 0;
  std::uint64_t runs_terminated = 0;  // all processes terminated in budget

  // Reproduction header: the exact inputs that generated this report.
  // Recorded in every report (and in corpus file headers, see corpus.h) so a
  // finding is always traceable to its generating configuration.
  std::uint64_t seed = 0;
  std::string engine;  // "blind" | "coverage"
  int threads = 1;     // resolved worker count (blind engine)

  // Coverage statistics (tracked in both modes).
  std::uint64_t distinct_fingerprints = 0;  // distinct configurations seen
  std::uint64_t interesting_runs = 0;  // runs that found a new fingerprint
  std::uint64_t mutated_runs = 0;      // coverage mode: runs bred from the pool
  std::uint64_t shrink_replays = 0;    // replays spent minimizing violations

  // Campaign stopped early at a run boundary (cancellation, deadline, or
  // FuzzOptions::stop_after_runs). The report covers the completed prefix;
  // with a checkpoint_path the campaign is resumable.
  bool interrupted = false;
  // Non-empty iff a checkpoint write failed (the campaign stops there; the
  // report covers the runs completed, but the checkpoint on disk is stale).
  std::string checkpoint_error;

  bool ok() const { return violations.empty(); }
  bool violates(const std::string& property) const;
};

// Rejects engine/knob combinations the blind engine cannot honor instead
// of silently dropping them: checkpoint_path, resume, and stop_after_runs
// all require coverage_guided (the blind engine's claim order is
// thread-scheduling dependent, so there is no resumable run boundary).
// INVALID_ARGUMENT names the offending knob, in the same style as the
// checkpoint wrong-run errors. fuzz_safety itself treats a bad combination
// as a contract violation (LBSA_CHECK); callers that accept external
// options (the CLIs, the serve facade) validate here first and surface the
// Status.
Status validate_fuzz_options(const FuzzOptions& options);

// Safety predicate factories (shared by the fuzzers, the shrinker, and the
// corpus replayer). k_agreement_safety judges agreement(k), validity, and
// absence of aborts; dac_safety judges agreement, validity w.r.t.
// non-aborting proposers, and only-p-aborts.
SafetyPredicate k_agreement_safety(int k, std::vector<Value> inputs);
SafetyPredicate dac_safety(int distinguished_pid, std::vector<Value> inputs);

// Fuzzes the safety half of k-set agreement (agreement, validity, no
// aborts). Termination is NOT judged (randomized runs can time out
// legitimately); runs_terminated reports how many finished.
FuzzReport fuzz_k_agreement(std::shared_ptr<const sim::Protocol> protocol,
                            int k, const std::vector<Value>& inputs,
                            const FuzzOptions& options = {});

// Fuzzes the safety half of n-DAC (agreement, validity w.r.t. non-aborting
// proposers, only-p-aborts).
FuzzReport fuzz_dac(std::shared_ptr<const sim::Protocol> protocol,
                    int distinguished_pid, const std::vector<Value>& inputs,
                    const FuzzOptions& options = {});

// Fuzzes an arbitrary safety predicate (the engine under the two wrappers).
FuzzReport fuzz_safety(std::shared_ptr<const sim::Protocol> protocol,
                       const SafetyPredicate& judge,
                       const FuzzOptions& options = {});

}  // namespace lbsa::modelcheck

#endif  // LBSA_MODELCHECK_FUZZ_H_
