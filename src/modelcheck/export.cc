#include "modelcheck/export.h"

#include <set>

namespace lbsa::modelcheck {
namespace {

// A small qualitative palette for univalent values (cycled).
constexpr const char* kValueColors[] = {"#4c78a8", "#59a14f", "#b07aa1",
                                        "#76b7b2", "#9c755f", "#edc948"};

std::string escape(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
  return out;
}

}  // namespace

std::string to_dot(const sim::Protocol& protocol, const ConfigGraph& graph,
                   const ValenceAnalyzer* analyzer,
                   const DotOptions& options) {
  const std::size_t n = graph.nodes().size();
  const std::size_t shown = std::min(n, options.max_nodes);

  std::set<std::uint32_t> critical;
  if (analyzer != nullptr) {
    for (std::uint32_t id : analyzer->critical_nodes()) critical.insert(id);
  }

  std::string dot = "digraph \"" + escape(protocol.name()) + "\" {\n";
  dot += "  rankdir=TB;\n  node [shape=circle, style=filled, "
         "fontsize=8, width=0.3, fixedsize=true];\n";

  for (std::uint32_t id = 0; id < shown; ++id) {
    std::string color = "#d9d9d9";  // decision-free grey
    std::string label = std::to_string(id);
    if (analyzer != nullptr) {
      if (analyzer->is_multivalent(id)) {
        color = "#f28e2b";  // amber: multivalent
      } else if (analyzer->reachable_count(id) == 1) {
        const Value v = analyzer->univalent_value(id);
        // Stable hue per value via its index in the universe.
        for (std::size_t i = 0; i < analyzer->universe().size(); ++i) {
          if (analyzer->universe()[i] == v) {
            color = kValueColors[i % std::size(kValueColors)];
            break;
          }
        }
      }
    }
    dot += "  n" + std::to_string(id) + " [fillcolor=\"" + color + "\"";
    if (critical.contains(id)) dot += ", penwidth=3";
    if (id == graph.root()) dot += ", shape=doublecircle";
    dot += ", label=\"" + label + "\"];\n";
  }

  for (std::uint32_t from = 0; from < shown; ++from) {
    for (const Edge& edge : graph.edges()[from]) {
      if (edge.to >= shown) continue;
      dot += "  n" + std::to_string(from) + " -> n" +
             std::to_string(edge.to);
      if (options.include_step_labels) {
        dot += " [label=\"p" + std::to_string(edge.pid) + "\", fontsize=7]";
      }
      dot += ";\n";
    }
  }

  if (shown < n) {
    dot += "  elided [shape=note, style=dashed, fixedsize=false, "
           "label=\"+" +
           std::to_string(n - shown) + " more configurations\"];\n";
  }
  dot += "}\n";
  return dot;
}

}  // namespace lbsa::modelcheck
