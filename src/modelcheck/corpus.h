// The regression corpus: named fuzz targets and the on-disk format that
// pins their shrunk counterexample schedules forever.
//
// A corpus file is a sim/trace.h schedule prefixed with a comment header
// naming the fuzz target and the property the schedule violates:
//
//   # lbsa fuzz corpus v1
//   # task: strawdac3
//   # property: agreement
//   # detail: 2 distinct decisions
//   0
//   1
//   !2
//   0
//
// The task key resolves through make_named_task to a concrete protocol and
// safety judge, so a checked-in file replays with zero ambient context:
// tools/fuzz_shrink_cli writes these files, and the corpus replay test
// re-executes every file under tests/corpus/ on each ctest run. Workflow:
// fuzz → shrink → commit the corpus file → ctest replays it forever.
#ifndef LBSA_MODELCHECK_CORPUS_H_
#define LBSA_MODELCHECK_CORPUS_H_

#include <memory>
#include <string>
#include <vector>

#include "base/status.h"
#include "modelcheck/fuzz.h"

namespace lbsa::modelcheck {

// A fuzz target: a concrete protocol instance plus the task-level safety
// judge it is fuzzed against.
struct NamedTask {
  std::string name;
  std::string description;
  std::shared_ptr<const sim::Protocol> protocol;
  SafetyPredicate judge;
  // Task parameters: k >= 1 with distinguished_pid == -1 is k-set
  // agreement; distinguished_pid >= 0 is DAC.
  int k = 1;
  int distinguished_pid = -1;
  std::vector<Value> inputs;
  // True for straw-men and mutants whose safety is genuinely broken (the
  // fuzzer is expected to find violations).
  bool expect_violation = false;
};

// Resolves a task key ("strawdac3", "mutant-2sa4", ...). NOT_FOUND lists
// the known keys.
StatusOr<NamedTask> make_named_task(const std::string& name);

// All registry keys, in registration order.
std::vector<std::string> named_task_names();

// Runs the right fuzzer (fuzz_k_agreement / fuzz_dac) for the task.
FuzzReport fuzz_named_task(const NamedTask& task, const FuzzOptions& options);

// One corpus entry. `seed` and `engine` record the fuzzer configuration
// that produced the finding (`# seed:` / `# engine:` headers) — informational
// provenance for reproducing the original fuzz session; replay needs only
// the schedule. Absent in pre-provenance corpus files ("" / 0).
struct CorpusCase {
  std::string task;      // named-task key
  std::string property;  // property the schedule must violate on replay
  std::string detail;    // informational (violation detail, provenance)
  std::uint64_t seed = 0;  // FuzzOptions::seed of the generating session
  std::string engine;      // "blind" | "coverage" ("" if unrecorded)
  std::vector<sim::ScriptedAdversary::Choice> schedule;
};

std::string corpus_case_to_string(const CorpusCase& c);

// Parses a corpus file. INVALID_ARGUMENT on a missing task/property header
// or a malformed schedule.
StatusOr<CorpusCase> parse_corpus_case(const std::string& text);

// Replays the case strictly (sim::replay_schedule — any drift in protocol
// semantics surfaces as an error, not a silent skip) and confirms the
// named property is violated in the final configuration.
Status replay_corpus_case(const CorpusCase& c);

}  // namespace lbsa::modelcheck

#endif  // LBSA_MODELCHECK_CORPUS_H_
