// Schedule shrinking: delta-debugging for fuzz counterexamples. A raw fuzz
// violation is a multi-thousand-step (pid, outcome) schedule; the shrinker
// reduces it to a minimal schedule that still violates the *same* safety
// property on replay, by repeatedly proposing a smaller candidate and
// re-running it:
//
//   * suffix truncation — the replay stops at the first violating step, so
//     every accepted candidate is automatically violation-minimal on the
//     right;
//   * chunk removal — ddmin-style deletion with halving chunk sizes;
//   * crash-event removal — injected crashes that the violation does not
//     need are dropped first (they remove whole branches of behaviour);
//   * outcome canonicalization — nondeterministic outcome choices are
//     rewritten to 0 where the violation survives.
//
// Candidates are executed *leniently* (entries naming a terminated process
// are skipped, out-of-range outcomes fall back to 0 — the hardened
// ScriptedAdversary semantics), and every accepted candidate is replaced by
// its *effective* schedule: exactly the steps that executed. Effective
// schedules are strict — sim::replay_schedule accepts them verbatim — so
// the shrinker's output can be checked into a corpus and replayed forever.
#ifndef LBSA_MODELCHECK_SHRINK_H_
#define LBSA_MODELCHECK_SHRINK_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "sim/scheduler.h"
#include "sim/trace.h"

namespace lbsa::modelcheck {

// A safety judge: maps a configuration to the violated property and a
// human-readable detail, or ("", "") if every property holds. Factories for
// the paper's tasks live in modelcheck/fuzz.h (k_agreement_safety,
// dac_safety).
using SafetyPredicate =
    std::function<std::pair<std::string, std::string>(const sim::Config&)>;

// Result of one lenient schedule execution.
struct ReplayOutcome {
  // The steps and crashes that actually executed, in order; always a
  // strict-valid schedule (replay_schedule accepts it).
  std::vector<sim::ScriptedAdversary::Choice> effective;
  std::string property;  // violated property ("" if the run stayed clean)
  std::string detail;

  bool violated() const { return !property.empty(); }
};

// Executes `schedule` on a fresh simulation of `protocol` with the lenient
// semantics described above, evaluating `judge` after every step and
// stopping at the first violation. If `step_hashes` is non-null, the
// configuration hash after every executed step is appended (coverage
// fingerprints for the fuzzer).
ReplayOutcome run_schedule_lenient(
    const std::shared_ptr<const sim::Protocol>& protocol,
    const std::vector<sim::ScriptedAdversary::Choice>& schedule,
    const SafetyPredicate& judge,
    std::vector<std::uint64_t>* step_hashes = nullptr);

struct ShrinkOptions {
  // Hard cap on candidate replays (the dominant cost driver).
  std::uint64_t max_replays = 4000;
  // Full passes (crash removal + ddmin + outcome canonicalization) until
  // fixpoint.
  int max_rounds = 16;
};

struct ShrinkStats {
  std::size_t raw_steps = 0;
  std::size_t shrunk_steps = 0;
  std::uint64_t replays = 0;
  int rounds = 0;
};

// Shrinks `schedule` while replays keep violating `property` under `judge`.
// Returns the smallest schedule found (the normalized input if no deletion
// helped; the input itself if the violation fails to reproduce at all).
// Deterministic: no randomness, so equal inputs give equal outputs.
std::vector<sim::ScriptedAdversary::Choice> shrink_schedule(
    const std::shared_ptr<const sim::Protocol>& protocol,
    const std::vector<sim::ScriptedAdversary::Choice>& schedule,
    const SafetyPredicate& judge, const std::string& property,
    const ShrinkOptions& options = {}, ShrinkStats* stats = nullptr);

}  // namespace lbsa::modelcheck

#endif  // LBSA_MODELCHECK_SHRINK_H_
