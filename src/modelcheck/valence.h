// Valence analysis — the mechanized core of the paper's impossibility
// arguments (Theorems 4.2 and 5.2, after FLP [8] and Herlihy [10]).
//
// For every node of a ConfigGraph we compute the set of decision values that
// appear in some configuration reachable from it (as a bitmask over the
// observed decision universe). In the paper's terminology, for a binary
// task, a configuration C is
//   * v-valent    if only v is reachable           (mask == {v}),
//   * univalent   if it is 0-valent or 1-valent,
//   * bivalent    if both 0 and 1 are reachable.
// A *critical* configuration is a bivalent one all of whose successors are
// univalent — the configurations Claims 4.2.5 / 5.2.2 hunt for.
//
// Reduced graphs (ExploreOptions::reduction) are analyzed as-is: under
// symmetry reduction each node stands for a whole orbit, so the decision
// universe, the root's reachable mask, and univalent/multivalent verdicts
// are those of the full graph, while node *counts* (multivalent, critical)
// count orbit representatives — weight them by Canonicalizer::orbit_size to
// recover full-graph counts (the cross-validation suite does exactly this).
// Under POR, multivalent/critical counts are not comparable to the full
// graph (whole interleavings are elided), but the universe and the root
// mask still agree.
#ifndef LBSA_MODELCHECK_VALENCE_H_
#define LBSA_MODELCHECK_VALENCE_H_

#include <cstdint>
#include <vector>

#include "modelcheck/explorer.h"

namespace lbsa::modelcheck {

class ValenceAnalyzer {
 public:
  // Builds the analysis for `graph` (kept by reference; must outlive this).
  // Supports up to 64 distinct decision values.
  explicit ValenceAnalyzer(const ConfigGraph& graph);

  // The distinct decision values observed anywhere, in first-seen order;
  // bit i of every mask refers to universe()[i].
  const std::vector<Value>& universe() const { return universe_; }

  // Bitmask of decision values reachable from node id (including values
  // already decided in id itself).
  std::uint64_t reachable_mask(std::uint32_t id) const {
    return masks_[id];
  }

  // Number of distinct reachable decision values from id.
  int reachable_count(std::uint32_t id) const;

  bool is_univalent(std::uint32_t id) const { return reachable_count(id) == 1; }
  bool is_multivalent(std::uint32_t id) const {
    return reachable_count(id) >= 2;
  }
  // The unique reachable decision value of a univalent node.
  Value univalent_value(std::uint32_t id) const;

  // All multivalent nodes whose successors are every one univalent.
  std::vector<std::uint32_t> critical_nodes() const;

  // All multivalent nodes.
  std::vector<std::uint32_t> multivalent_nodes() const;

 private:
  const ConfigGraph& graph_;
  std::vector<Value> universe_;
  std::vector<std::uint64_t> masks_;
};

}  // namespace lbsa::modelcheck

#endif  // LBSA_MODELCHECK_VALENCE_H_
