// Cooperative cancellation and deadlines for long-running checks.
//
// The exploration engines poll a CancelToken inside every per-worker
// expansion chunk (kChunk items) and the fuzz engines at run boundaries;
// on a trip the exploration engines roll back to the last completed BFS
// level, so the run stops promptly even mid-way through a wide level while
// everything kept is still valid — the partial graph keeps the
// bit-identical canonical prefix guarantee and the partial fuzz report
// aggregates a deterministic run prefix. The token is safe to trip from a signal handler (a lock-free
// atomic store), which is exactly how the CLIs wire Ctrl-C to a clean
// "interrupted, resumable" exit.
#ifndef LBSA_MODELCHECK_CANCEL_H_
#define LBSA_MODELCHECK_CANCEL_H_

#include <atomic>
#include <chrono>

namespace lbsa::modelcheck {

class CancelToken {
 public:
  CancelToken() = default;
  CancelToken(const CancelToken&) = delete;
  CancelToken& operator=(const CancelToken&) = delete;

  // Async-signal-safe (std::atomic<bool> is lock-free on every supported
  // target; static_assert guards the claim).
  void cancel() { cancelled_.store(true, std::memory_order_relaxed); }
  bool cancelled() const {
    return cancelled_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<bool> cancelled_{false};
  static_assert(std::atomic<bool>::is_always_lock_free,
                "CancelToken must be signal-safe");
};

// A wall-clock deadline on the steady clock; the default-constructed
// (epoch) value means "no deadline".
using Deadline = std::chrono::steady_clock::time_point;

inline bool deadline_passed(const Deadline& deadline) {
  return deadline != Deadline{} &&
         std::chrono::steady_clock::now() >= deadline;
}

}  // namespace lbsa::modelcheck

#endif  // LBSA_MODELCHECK_CANCEL_H_
