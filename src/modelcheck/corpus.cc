#include "modelcheck/corpus.h"

#include <cstdlib>
#include <functional>
#include <utility>

#include "protocols/ben_or.h"
#include "protocols/consensus_from_nm_pac.h"
#include "protocols/dac_from_nm_pac.h"
#include "protocols/dac_from_pac.h"
#include "protocols/group_ksa.h"
#include "protocols/mutants.h"
#include "protocols/one_shot.h"
#include "protocols/straw_dac.h"
#include "sim/trace.h"

namespace lbsa::modelcheck {
namespace {

std::vector<Value> iota_inputs(int n, Value base = 100) {
  std::vector<Value> inputs;
  for (int i = 0; i < n; ++i) inputs.push_back(base + 100 * i);
  return inputs;
}

NamedTask k_agreement_task(std::string name, std::string description,
                           std::shared_ptr<const sim::Protocol> protocol,
                           int k, std::vector<Value> inputs,
                           bool expect_violation) {
  NamedTask task;
  task.name = std::move(name);
  task.description = std::move(description);
  task.protocol = std::move(protocol);
  task.judge = k_agreement_safety(k, inputs);
  task.k = k;
  task.distinguished_pid = -1;
  task.inputs = std::move(inputs);
  task.expect_violation = expect_violation;
  return task;
}

NamedTask dac_task(std::string name, std::string description,
                   std::shared_ptr<const sim::Protocol> protocol,
                   int distinguished_pid, std::vector<Value> inputs,
                   bool expect_violation) {
  NamedTask task;
  task.name = std::move(name);
  task.description = std::move(description);
  task.protocol = std::move(protocol);
  task.judge = dac_safety(distinguished_pid, inputs);
  task.k = 1;
  task.distinguished_pid = distinguished_pid;
  task.inputs = std::move(inputs);
  task.expect_violation = expect_violation;
  return task;
}

struct RegistryEntry {
  const char* name;
  const char* description;
  std::function<NamedTask()> make;
};

NamedTask make_straw_dac(int n) {
  const auto inputs = iota_inputs(n);
  return dac_task(
      "strawdac" + std::to_string(n),
      "agreement-violating straw-man DAC (2-SA fallback), " +
          std::to_string(n) + " processes",
      std::make_shared<protocols::StrawDacFallbackProtocol>(inputs), 0,
      inputs, /*expect_violation=*/true);
}

const RegistryEntry kRegistry[] = {
    // Correct protocols — fuzz targets that must stay clean.
    {"dac3", "Algorithm 2: 3-DAC from one 3-PAC",
     [] {
       const auto inputs = iota_inputs(3);
       return dac_task(
           "dac3", "Algorithm 2: 3-DAC from one 3-PAC",
           std::make_shared<protocols::DacFromPacProtocol>(inputs), 0,
           inputs, false);
     }},
    {"dac5",
     "Algorithm 2: 5-DAC from one 5-PAC (parallel-engine bench workload)",
     [] {
       const auto inputs = iota_inputs(5);
       return dac_task(
           "dac5", "Algorithm 2: 5-DAC from one 5-PAC",
           std::make_shared<protocols::DacFromPacProtocol>(inputs), 0,
           inputs, false);
     }},
    {"dac6",
     "Algorithm 2: 6-DAC from one 6-PAC (largest exhaustive instance; "
     "minutes of wall clock)",
     [] {
       const auto inputs = iota_inputs(6);
       return dac_task(
           "dac6", "Algorithm 2: 6-DAC from one 6-PAC",
           std::make_shared<protocols::DacFromPacProtocol>(inputs), 0,
           inputs, false);
     }},
    {"consensus5",
     "consensus among 5 via one 5-consensus object (parallel-engine bench "
     "workload)",
     [] {
       const auto inputs = iota_inputs(5);
       return k_agreement_task(
           "consensus5",
           "consensus among 5 via one 5-consensus object",
           protocols::make_consensus_via_n_consensus(inputs), 1, inputs,
           false);
     }},
    {"groupksa", "3-set agreement, 3 groups of 4 (12 processes)",
     [] {
       const auto inputs = iota_inputs(12);
       return k_agreement_task(
           "groupksa", "3-set agreement, 3 groups of 4 (12 processes)",
           std::make_shared<protocols::GroupKsaProtocol>(3, 4, inputs), 3,
           inputs, false);
     }},
    {"twosa4", "2-set agreement among 4 via one strong 2-SA",
     [] {
       const auto inputs = iota_inputs(4);
       return k_agreement_task(
           "twosa4", "2-set agreement among 4 via one strong 2-SA",
           protocols::make_ksa_via_two_sa(inputs), 2, inputs, false);
     }},
    {"benor", "Ben-Or binary consensus, 5 processes, safety half",
     [] {
       const std::vector<Value> inputs{0, 1, 0, 1, 1};
       return k_agreement_task(
           "benor", "Ben-Or binary consensus, 5 processes, safety half",
           std::make_shared<protocols::BenOrProtocol>(inputs, 40), 1, inputs,
           false);
     }},
    // The (n,m)-PAC ports of the hierarchy sweep (core/hierarchy_sweep.h):
    // the consensus port solving m-consensus and the PAC ports solving
    // n-DAC, both of which must stay clean under fuzzing.
    {"consensus-from-nmpac42",
     "2-consensus over the C port of a (4,2)-PAC (Theorem 5.3)",
     [] {
       const auto inputs = iota_inputs(2);
       return k_agreement_task(
           "consensus-from-nmpac42",
           "2-consensus over the C port of a (4,2)-PAC (Theorem 5.3)",
           std::make_shared<protocols::ConsensusFromNmPacProtocol>(4, 2,
                                                                   inputs),
           1, inputs, false);
     }},
    {"dac-from-nmpac32",
     "3-DAC over the PAC ports of a (3,2)-PAC (Observation 5.1(b))",
     [] {
       const auto inputs = iota_inputs(3);
       return dac_task(
           "dac-from-nmpac32",
           "3-DAC over the PAC ports of a (3,2)-PAC (Observation 5.1(b))",
           std::make_shared<protocols::DacFromNmPacProtocol>(inputs, 2, 0),
           0, inputs, false);
     }},
    // Symmetric instances — equal inputs make the declared symmetry groups
    // non-trivial, so these are the reduction layer's primary subjects (the
    // "-sym" suffix marks them for the cross-validation and bench sweeps).
    {"dac3-sym",
     "Algorithm 2: 3-DAC from one 3-PAC, equal inputs (orbit {q1,q2})",
     [] {
       const std::vector<Value> inputs{100, 100, 100};
       return dac_task(
           "dac3-sym",
           "Algorithm 2: 3-DAC from one 3-PAC, equal inputs (orbit {q1,q2})",
           std::make_shared<protocols::DacFromPacProtocol>(inputs), 0,
           inputs, false);
     }},
    {"dac4-sym",
     "Algorithm 2: 4-DAC from one 4-PAC, equal inputs (orbit {q1,q2,q3})",
     [] {
       const std::vector<Value> inputs{100, 100, 100, 100};
       return dac_task(
           "dac4-sym",
           "Algorithm 2: 4-DAC from one 4-PAC, equal inputs (orbit "
           "{q1,q2,q3})",
           std::make_shared<protocols::DacFromPacProtocol>(inputs), 0,
           inputs, false);
     }},
    {"dac5-sym",
     "Algorithm 2: 5-DAC from one 5-PAC, equal inputs (orbit {q1..q4})",
     [] {
       const std::vector<Value> inputs{100, 100, 100, 100, 100};
       return dac_task(
           "dac5-sym",
           "Algorithm 2: 5-DAC from one 5-PAC, equal inputs (orbit "
           "{q1..q4})",
           std::make_shared<protocols::DacFromPacProtocol>(inputs), 0,
           inputs, false);
     }},
    {"consensus4-sym",
     "consensus among 4 via one 4-consensus object, equal inputs (full S_4)",
     [] {
       const std::vector<Value> inputs{100, 100, 100, 100};
       return k_agreement_task(
           "consensus4-sym",
           "consensus among 4 via one 4-consensus object, equal inputs "
           "(full S_4)",
           protocols::make_consensus_via_n_consensus(inputs), 1, inputs,
           false);
     }},
    // Broken protocols — violation generators for the corpus.
    {"strawdac3", "straw-man DAC, 3 processes",
     [] { return make_straw_dac(3); }},
    {"strawdac4", "straw-man DAC, 4 processes",
     [] { return make_straw_dac(4); }},
    {"strawdac5", "straw-man DAC, 5 processes",
     [] { return make_straw_dac(5); }},
    {"mutant-dac-no-adopt3", "DAC mutant: adopt phase dropped (agreement)",
     [] {
       const auto inputs = iota_inputs(3);
       return dac_task(
           "mutant-dac-no-adopt3",
           "DAC mutant: adopt phase dropped (agreement)",
           std::make_shared<protocols::MutantDacProtocol>(
               inputs, protocols::MutantDacProtocol::Bug::kNoAdopt),
           0, inputs, true);
     }},
    {"mutant-dac-wrong-abort3",
     "DAC mutant: non-distinguished abort (only-p-aborts)",
     [] {
       const auto inputs = iota_inputs(3);
       return dac_task(
           "mutant-dac-wrong-abort3",
           "DAC mutant: non-distinguished abort (only-p-aborts)",
           std::make_shared<protocols::MutantDacProtocol>(
               inputs, protocols::MutantDacProtocol::Bug::kWrongAbort),
           0, inputs, true);
     }},
    {"mutant-dac-no-adopt3-sym",
     "no-adopt DAC mutant, inputs {100,200,200} (orbit {q1,q2}, agreement)",
     [] {
       // Equal q inputs keep the orbit non-trivial while the distinct p
       // input keeps the dropped-adopt bug observable (a q deciding its own
       // 200 against a decided 100).
       const std::vector<Value> inputs{100, 200, 200};
       return dac_task(
           "mutant-dac-no-adopt3-sym",
           "no-adopt DAC mutant, inputs {100,200,200} (orbit {q1,q2}, "
           "agreement)",
           std::make_shared<protocols::MutantDacProtocol>(
               inputs, protocols::MutantDacProtocol::Bug::kNoAdopt),
           0, inputs, true);
     }},
    {"mutant-dac-wrong-abort3-sym",
     "wrong-abort DAC mutant, inputs {100,200,200} (orbit {q1,q2})",
     [] {
       const std::vector<Value> inputs{100, 200, 200};
       return dac_task(
           "mutant-dac-wrong-abort3-sym",
           "wrong-abort DAC mutant, inputs {100,200,200} (orbit {q1,q2})",
           std::make_shared<protocols::MutantDacProtocol>(
               inputs, protocols::MutantDacProtocol::Bug::kWrongAbort),
           0, inputs, true);
     }},
    {"mutant-2sa4", "2-SA mutant: backing object admits 3 values (agreement)",
     [] {
       const auto inputs = iota_inputs(4);
       return k_agreement_task(
           "mutant-2sa4",
           "2-SA mutant: backing object admits 3 values (agreement)",
           protocols::make_overclaimed_two_sa(inputs), 2, inputs, true);
     }},
    {"mutant-consensus-from-nmpac22",
     "consensus port of an overclaimed (2,2)-PAC: C port backed by 3-SA "
     "(agreement)",
     [] {
       const auto inputs = iota_inputs(2);
       return k_agreement_task(
           "mutant-consensus-from-nmpac22",
           "consensus port of an overclaimed (2,2)-PAC: C port backed by "
           "3-SA (agreement)",
           protocols::make_overclaimed_consensus_from_nm_pac(2, 2, inputs),
           1, inputs, true);
     }},
    {"mutant-dac-from-nmpac21",
     "no-adopt DAC mutant over the PAC ports of a (2,1)-PAC (agreement)",
     [] {
       const auto inputs = iota_inputs(2);
       return dac_task(
           "mutant-dac-from-nmpac21",
           "no-adopt DAC mutant over the PAC ports of a (2,1)-PAC "
           "(agreement)",
           std::make_shared<protocols::MutantDacProtocol>(
               inputs, 1, protocols::MutantDacProtocol::Bug::kNoAdopt),
           0, inputs, true);
     }},
    {"mutant-consensus-off-by-one3",
     "consensus mutant: decides winner + 1 (validity)",
     [] {
       const auto inputs = iota_inputs(3);
       return k_agreement_task(
           "mutant-consensus-off-by-one3",
           "consensus mutant: decides winner + 1 (validity)",
           protocols::make_off_by_one_consensus(inputs), 1, inputs, true);
     }},
};

}  // namespace

StatusOr<NamedTask> make_named_task(const std::string& name) {
  for (const RegistryEntry& entry : kRegistry) {
    if (name == entry.name) return entry.make();
  }
  std::string known;
  for (const RegistryEntry& entry : kRegistry) {
    if (!known.empty()) known += ", ";
    known += entry.name;
  }
  return not_found("unknown fuzz task '" + name + "' (known: " + known + ")");
}

std::vector<std::string> named_task_names() {
  std::vector<std::string> names;
  for (const RegistryEntry& entry : kRegistry) names.emplace_back(entry.name);
  return names;
}

FuzzReport fuzz_named_task(const NamedTask& task, const FuzzOptions& options) {
  return fuzz_safety(task.protocol, task.judge, options);
}

std::string corpus_case_to_string(const CorpusCase& c) {
  std::string out = "# lbsa fuzz corpus v1\n";
  out += "# task: " + c.task + "\n";
  out += "# property: " + c.property + "\n";
  if (!c.detail.empty()) out += "# detail: " + c.detail + "\n";
  if (!c.engine.empty()) {
    out += "# seed: " + std::to_string(c.seed) + "\n";
    out += "# engine: " + c.engine + "\n";
  }
  out += sim::schedule_to_string(c.schedule);
  return out;
}

StatusOr<CorpusCase> parse_corpus_case(const std::string& text) {
  CorpusCase c;
  // Header scan: `# key: value` comment lines.
  std::size_t pos = 0;
  while (pos < text.size()) {
    std::size_t end = text.find('\n', pos);
    if (end == std::string::npos) end = text.size();
    const std::string line = text.substr(pos, end - pos);
    pos = end + 1;
    auto header_value = [&line](const char* key) -> std::string {
      const std::string prefix = std::string("# ") + key + ": ";
      if (line.rfind(prefix, 0) != 0) return "";
      return line.substr(prefix.size());
    };
    if (auto v = header_value("task"); !v.empty()) c.task = v;
    if (auto v = header_value("property"); !v.empty()) c.property = v;
    if (auto v = header_value("detail"); !v.empty()) c.detail = v;
    if (auto v = header_value("seed"); !v.empty()) {
      c.seed = std::strtoull(v.c_str(), nullptr, 10);
    }
    if (auto v = header_value("engine"); !v.empty()) c.engine = v;
  }
  if (c.task.empty()) {
    return invalid_argument("corpus file: missing '# task:' header");
  }
  if (c.property.empty()) {
    return invalid_argument("corpus file: missing '# property:' header");
  }
  auto schedule = sim::parse_schedule(text);
  if (!schedule.is_ok()) return schedule.status();
  if (schedule.value().empty()) {
    return invalid_argument("corpus file: empty schedule");
  }
  c.schedule = std::move(schedule.value());
  return c;
}

Status replay_corpus_case(const CorpusCase& c) {
  auto task = make_named_task(c.task);
  if (!task.is_ok()) return task.status();
  auto replayed = sim::replay_schedule(task.value().protocol, c.schedule);
  if (!replayed.is_ok()) return replayed.status();
  const auto [property, detail] =
      task.value().judge(replayed.value().config());
  if (property != c.property) {
    return failed_precondition(
        "corpus case for task '" + c.task + "' expected a '" + c.property +
        "' violation on replay, got " +
        (property.empty() ? std::string("a clean run")
                          : "'" + property + "' (" + detail + ")"));
  }
  return Status::ok();
}

}  // namespace lbsa::modelcheck
