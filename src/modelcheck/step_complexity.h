// Exact worst-case step complexity over the configuration graph: the most
// own-steps a process can take before terminating, across ALL schedules and
// adversarial object responses. Infinite iff the process is not wait-free
// (a cycle with its steps exists) — the quantitative companion of the
// wait-freedom check.
#ifndef LBSA_MODELCHECK_STEP_COMPLEXITY_H_
#define LBSA_MODELCHECK_STEP_COMPLEXITY_H_

#include <optional>
#include <vector>

#include "modelcheck/explorer.h"

namespace lbsa::modelcheck {

// Worst-case number of pid-steps from the initial configuration until pid
// terminates (decides/aborts), maximized over schedules; std::nullopt if
// unbounded (pid can step infinitely often — not wait-free).
std::optional<std::uint64_t> worst_case_own_steps(const ConfigGraph& graph,
                                                  int pid);

// Per-process results for the whole protocol.
std::vector<std::optional<std::uint64_t>> worst_case_own_steps_all(
    const ConfigGraph& graph, int process_count);

}  // namespace lbsa::modelcheck

#endif  // LBSA_MODELCHECK_STEP_COMPLEXITY_H_
