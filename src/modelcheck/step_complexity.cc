#include "modelcheck/step_complexity.h"

#include <algorithm>

#include "base/check.h"

namespace lbsa::modelcheck {
namespace {

// Longest pid-step count over all paths in the subgraph of configurations
// where pid is still running. Cycles inside that subgraph that contain a
// pid-step mean "unbounded"; cycles without pid-steps contribute nothing to
// pid's own-step count but must not break the DP — so the DP runs on the
// condensation (Tarjan SCC), with an SCC counting as unbounded iff it
// contains an internal pid-edge.
class LongestPathAnalysis {
 public:
  LongestPathAnalysis(const ConfigGraph& graph, int pid)
      : graph_(graph), pid_(pid) {}

  std::optional<std::uint64_t> run() {
    const size_t n = graph_.nodes().size();
    scc_of_.assign(n, kNone);
    index_.assign(n, kNone);
    lowlink_.assign(n, 0);
    on_stack_.assign(n, 0);
    for (std::uint32_t v = 0; v < n; ++v) {
      if (active(v) && index_[v] == kNone) tarjan(v);
    }
    // Tarjan emits SCCs in reverse topological order of the condensation,
    // so iterating sccs_ in emission order processes successors first.
    // best_[s] = max pid-steps achievable starting anywhere in SCC s.
    best_.assign(sccs_.size(), 0);
    for (std::uint32_t s = 0; s < sccs_.size(); ++s) {
      std::uint64_t best = 0;
      bool internal_pid_edge = false;
      for (std::uint32_t v : sccs_[s]) {
        for (const Edge& e : graph_.edges()[v]) {
          const std::uint64_t weight = (e.pid == pid_) ? 1 : 0;
          if (!active(e.to)) {
            // pid terminated (or the whole run halted): path ends.
            best = std::max(best, weight);
            continue;
          }
          if (scc_of_[e.to] == s) {
            if (weight > 0) internal_pid_edge = true;
            continue;
          }
          best = std::max(best, weight + best_[scc_of_[e.to]]);
        }
      }
      if (internal_pid_edge) return std::nullopt;  // unbounded
      best_[s] = best;
    }
    if (!active(graph_.root())) return 0;
    return best_[scc_of_[graph_.root()]];
  }

 private:
  static constexpr std::uint32_t kNone = ~0u;

  bool active(std::uint32_t v) const {
    return graph_.nodes()[v].config.procs[static_cast<size_t>(pid_)]
        .running();
  }

  void tarjan(std::uint32_t root) {
    struct Frame {
      std::uint32_t v;
      size_t edge_pos;
    };
    std::vector<Frame> frames{{root, 0}};
    begin(root);
    while (!frames.empty()) {
      Frame& f = frames.back();
      const auto& edges = graph_.edges()[f.v];
      bool descended = false;
      while (f.edge_pos < edges.size()) {
        const Edge& e = edges[f.edge_pos++];
        if (!active(e.to)) continue;
        if (index_[e.to] == kNone) {
          begin(e.to);
          frames.push_back({e.to, 0});
          descended = true;
          break;
        }
        if (on_stack_[e.to]) {
          lowlink_[f.v] = std::min(lowlink_[f.v], index_[e.to]);
        }
      }
      if (descended) continue;
      const std::uint32_t v = f.v;
      frames.pop_back();
      if (!frames.empty()) {
        lowlink_[frames.back().v] =
            std::min(lowlink_[frames.back().v], lowlink_[v]);
      }
      if (lowlink_[v] == index_[v]) {
        sccs_.emplace_back();
        std::uint32_t w;
        do {
          w = stack_.back();
          stack_.pop_back();
          on_stack_[w] = 0;
          scc_of_[w] = static_cast<std::uint32_t>(sccs_.size() - 1);
          sccs_.back().push_back(w);
        } while (w != v);
      }
    }
  }

  void begin(std::uint32_t v) {
    index_[v] = lowlink_[v] = next_index_++;
    stack_.push_back(v);
    on_stack_[v] = 1;
  }

  const ConfigGraph& graph_;
  int pid_;
  std::uint32_t next_index_ = 0;
  std::vector<std::uint32_t> index_, lowlink_, scc_of_;
  std::vector<char> on_stack_;
  std::vector<std::uint32_t> stack_;
  std::vector<std::vector<std::uint32_t>> sccs_;
  std::vector<std::uint64_t> best_;
};

}  // namespace

std::optional<std::uint64_t> worst_case_own_steps(const ConfigGraph& graph,
                                                  int pid) {
  return LongestPathAnalysis(graph, pid).run();
}

std::vector<std::optional<std::uint64_t>> worst_case_own_steps_all(
    const ConfigGraph& graph, int process_count) {
  std::vector<std::optional<std::uint64_t>> out;
  out.reserve(static_cast<size_t>(process_count));
  for (int pid = 0; pid < process_count; ++pid) {
    out.push_back(worst_case_own_steps(graph, pid));
  }
  return out;
}

}  // namespace lbsa::modelcheck
