// Batched concurrent interning over an open-addressing flat table with a
// CAS reservation-flag slot protocol — the lock-free successor of
// ShardedInternTable (interning.h), built for the explorer hot path where
// per-node mutex acquisition dominated parallel runs.
//
// Design (after the BCL ChecksumHashMap free/reserved/ready protocol and
// the parabix arena-allocated trie):
//   * 64 shards, each an open-addressing table of 16-byte slots. A 2-word
//     hash routes exactly as in ShardedInternTable: the low word picks the
//     shard and the probe start, the high word is the stored fingerprint —
//     so both tables assign the same id *set* for the same key set, which
//     the equivalence hammer test exploits.
//   * A slot is two atomics: `fp` (0 = free, else the never-zero
//     fingerprint) and `id` (kEmpty = reserved-but-unpublished, else the
//     assigned id). Insertion CASes fp 0 -> fingerprint to *reserve* the
//     slot, writes the entry (key pointer, payload), then publishes by
//     storing id with release order. A prober that hits a matching
//     fingerprint spins for the id (publication is a handful of stores,
//     never blocked on a lock) and then verifies the full key — fingerprint
//     collisions are verified, never trusted.
//   * Keys are NOT copied into a shard-owned pool under a lock: callers
//     pass a per-worker WordArena, and only the *winning* inserter copies
//     its key from scratch storage into that arena. Losers touch no key
//     memory at all. The arenas must outlive the table's last use.
//   * Entries (key pointer/length, hash, payload) live in per-shard
//     segmented logs indexed by local id — segments are fixed-size and
//     never move, so payload()/key() are simple loads once an id is
//     published.
//   * Growth: callers probe in *batches* (intern_batch), holding the
//     shard's grow-lock in shared mode for the whole batch — one lock
//     acquisition per shard-batch, not per key. When the batch would push
//     the shard past its load factor, the caller upgrades to exclusive,
//     doubles the slot array, and rebuilds it from the entry log (entries
//     carry their hash, so no key is rehashed). Probing itself never takes
//     the lock per key.
//
// Ids are (local << 6) | shard, as before, so the explorer's canonical
// renumbering pass is unchanged.
//
// Thread-safety contract: intern_batch()/intern() may run concurrently
// from any number of threads (each with its OWN arena and tally).
// payload_mut() may be called only by the thread whose intern inserted the
// id, until quiescence. payload()/key()/id_bound()/stats() are
// quiescent-only: establish happens-before (level barrier / thread join)
// between the last intern and the first read.
#ifndef LBSA_MODELCHECK_BATCH_INTERN_H_
#define LBSA_MODELCHECK_BATCH_INTERN_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <span>
#include <thread>
#include <vector>

#include "base/arena.h"
#include "base/check.h"
#include "base/hashing.h"

namespace lbsa::modelcheck {

template <typename Payload>
class BatchInternTable {
 public:
  static constexpr int kShardBits = 6;
  static constexpr std::uint32_t kShardCount = 1u << kShardBits;
  static constexpr std::uint32_t kEmpty = 0xffffffffu;

  // One key to intern. The caller fills key/hash (key typically points into
  // a per-batch scratch arena) and payload; intern_batch fills id/inserted.
  // On insertion the payload is MOVED into the table and the key words are
  // copied into the caller's persistent arena; on a duplicate both are left
  // untouched (the factory-never-runs guarantee of the mutex table).
  struct Candidate {
    std::span<const std::int64_t> key;
    Hash128 hash;
    Payload payload;
    std::uint32_t id = kEmpty;
    bool inserted = false;
    // Global insertion sequence number (1-based), set iff inserted. This is
    // the node-budget comparator: the serial engine expands exactly the
    // first max_nodes interned nodes, and seq > max_nodes reproduces that
    // cut under concurrency without a racy size() re-read.
    std::uint64_t seq = 0;
  };

  // Per-worker probe statistics, accumulated locally by the calling thread
  // and merged at join — exact totals with zero contention (the fix for the
  // racy ShardedInternTable::Stats::probes read).
  struct Tally {
    std::uint64_t probes = 0;
    std::uint64_t cas_retries = 0;
    std::uint64_t inserts = 0;

    Tally& operator+=(const Tally& o) {
      probes += o.probes;
      cas_retries += o.cas_retries;
      inserts += o.inserts;
      return *this;
    }
  };

  struct Result {
    std::uint32_t id = 0;
    bool inserted = false;
  };

  // initial_slots_per_shard must be a power of two; tests shrink it to
  // force growth cycles.
  explicit BatchInternTable(std::size_t initial_slots_per_shard = 256) {
    LBSA_CHECK((initial_slots_per_shard &
                (initial_slots_per_shard - 1)) == 0 &&
               initial_slots_per_shard > 0);
    for (Shard& shard : shards_) {
      shard.slots = std::make_unique<Slot[]>(initial_slots_per_shard);
      shard.slot_count = initial_slots_per_shard;
      // Heap-allocated: keeps the Shard (and any BatchInternTable local)
      // small enough for the stack regardless of kMaxSegments.
      shard.segments =
          std::make_unique<std::atomic<Entry*>[]>(kMaxSegments);
    }
  }
  BatchInternTable(const BatchInternTable&) = delete;
  BatchInternTable& operator=(const BatchInternTable&) = delete;

  static std::uint32_t shard_of(Hash128 h) {
    return static_cast<std::uint32_t>(h.lo) & (kShardCount - 1);
  }

  // Interns every candidate, all of which must route to `shard_idx`
  // (shard_of(c->hash)). One shared-lock acquisition for the whole batch;
  // exclusive only when the shard must grow.
  void intern_batch(std::uint32_t shard_idx,
                    std::span<Candidate* const> candidates,
                    WordArena* key_arena, Tally* tally) {
    Shard& shard = shards_[shard_idx];
    const std::uint64_t batch = candidates.size();
    std::shared_lock<std::shared_mutex> lock(shard.grow_mu);
    // Register our prospective inserts BEFORE the capacity gate, so
    // concurrent batches cannot jointly overfill the shard: the gate sees
    // every in-flight batch's worst case, not just its own. (Completed
    // inserts are briefly counted twice — in `count` and in `inflight` —
    // which only errs toward growing early.)
    std::uint64_t inflight =
        shard.inflight.fetch_add(batch, std::memory_order_acq_rel) + batch;
    while (needs_growth(shard, inflight)) {
      lock.unlock();
      grow(shard);
      lock.lock();
      inflight = shard.inflight.load(std::memory_order_acquire);
    }
    for (Candidate* c : candidates) {
      probe_one(shard, shard_idx, *c, key_arena, tally);
    }
    shard.inflight.fetch_sub(batch, std::memory_order_acq_rel);
  }

  // Single-key convenience (root seeding, checkpoint-prefix seeding,
  // tests): a batch of one.
  Result intern(std::span<const std::int64_t> key, Payload payload,
                WordArena* key_arena, Tally* tally) {
    Candidate c;
    c.key = key;
    c.hash = hash_words_128(key);
    c.payload = std::move(payload);
    Candidate* p = &c;
    intern_batch(shard_of(c.hash), std::span<Candidate* const>(&p, 1),
                 key_arena, tally);
    return Result{c.id, c.inserted};
  }

  // Number of interned keys. Exact at quiescence; a racy read is a lower
  // bound on fully-published insertions.
  std::uint64_t size() const { return size_.load(std::memory_order_acquire); }

  // Quiescent-only: payload of a published id.
  const Payload& payload(std::uint32_t id) const {
    return entry_of(id).payload;
  }
  // Restricted mutation: the inserting worker may update its own node's
  // payload (e.g. truncation / expansion state) before quiescence; any
  // other thread only after.
  Payload& payload_mut(std::uint32_t id) { return entry_of(id).payload; }

  // Quiescent-only: the interned key words of a published id (points into
  // the inserter's arena).
  std::span<const std::int64_t> key(std::uint32_t id) const {
    const Entry& e = entry_of(id);
    return {e.key, e.len};
  }

  // Quiescent-only: exclusive upper bound on assigned ids (shard-striped
  // gaps included), for sizing id-indexed side arrays.
  std::uint32_t id_bound() const {
    std::uint32_t max_locals = 0;
    for (const Shard& shard : shards_) {
      const std::uint32_t n = shard.count.load(std::memory_order_acquire);
      if (n > max_locals) max_locals = n;
    }
    return max_locals << kShardBits;
  }

  struct Stats {
    std::uint64_t entries = 0;
    std::uint64_t slots = 0;
    std::uint64_t max_shard_entries = 0;
    std::uint64_t growths = 0;
  };

  // Quiescent-only occupancy statistics. Probe/CAS totals live in the
  // callers' tallies, not here.
  Stats stats() const {
    Stats out;
    for (const Shard& shard : shards_) {
      const std::uint64_t used = shard.count.load(std::memory_order_acquire);
      out.entries += used;
      out.slots += shard.slot_count;
      out.growths += shard.growths;
      if (used > out.max_shard_entries) out.max_shard_entries = used;
    }
    return out;
  }

 private:
  // Entry-log segmentation: segments are fixed at 4096 entries and never
  // move; the directory is pre-sized for the full local id space, so
  // directory slots are plain atomics published with CAS. 22 local bits x
  // 64 shards = 268M nodes, past the roadmap's 10^7-10^8 target, while the
  // table's fixed footprint (64 directories of 1024 pointers) stays small
  // enough that constructing a table for a tiny task costs microseconds,
  // not a multi-megabyte zeroing.
  static constexpr std::uint32_t kSegBits = 12;
  static constexpr std::uint32_t kSegSize = 1u << kSegBits;
  static constexpr std::uint32_t kMaxLocals = 1u << 22;
  static constexpr std::uint32_t kMaxSegments = kMaxLocals >> kSegBits;

  struct Entry {
    const std::int64_t* key = nullptr;
    std::uint32_t len = 0;
    Hash128 hash;  // kept so growth never rehashes key memory
    Payload payload;
  };

  struct Slot {
    std::atomic<std::uint64_t> fp{0};   // 0 = free
    std::atomic<std::uint32_t> id{kEmpty};  // kEmpty = unpublished
  };

  struct Shard {
    // Readers (probers) hold shared for a whole batch; growth holds
    // exclusive. Slot mutation itself is lock-free CAS under shared mode.
    std::shared_mutex grow_mu;
    std::unique_ptr<Slot[]> slots;
    std::size_t slot_count = 0;
    std::atomic<std::uint32_t> count{0};  // published+reserved entries
    std::vector<std::unique_ptr<Entry[]>> segment_storage;  // under grow_mu
    std::unique_ptr<std::atomic<Entry*>[]> segments;  // [kMaxSegments]
    std::mutex segment_mu;  // serializes rare segment allocation
    std::uint64_t growths = 0;  // under exclusive grow_mu
    // Worst-case inserts of every batch currently holding the shared lock;
    // see the capacity gate in intern_batch().
    std::atomic<std::uint64_t> inflight{0};
  };

  static std::uint64_t nonzero_fp(Hash128 h) { return h.hi == 0 ? 1 : h.hi; }

  const Entry& entry_of(std::uint32_t id) const {
    const Shard& shard = shards_[id & (kShardCount - 1)];
    const std::uint32_t local = id >> kShardBits;
    Entry* seg = shard.segments[local >> kSegBits].load(
        std::memory_order_acquire);
    return seg[local & (kSegSize - 1)];
  }
  Entry& entry_of(std::uint32_t id) {
    return const_cast<Entry&>(
        static_cast<const BatchInternTable*>(this)->entry_of(id));
  }

  Entry* ensure_segment(Shard& shard, std::uint32_t local) {
    const std::uint32_t seg_idx = local >> kSegBits;
    LBSA_CHECK_MSG(seg_idx < kMaxSegments,
                   "intern table shard id space exhausted");
    Entry* seg = shard.segments[seg_idx].load(std::memory_order_acquire);
    if (seg != nullptr) return seg;
    std::lock_guard<std::mutex> lock(shard.segment_mu);
    seg = shard.segments[seg_idx].load(std::memory_order_acquire);
    if (seg != nullptr) return seg;
    auto storage = std::make_unique<Entry[]>(kSegSize);
    seg = storage.get();
    shard.segment_storage.push_back(std::move(storage));
    shard.segments[seg_idx].store(seg, std::memory_order_release);
    return seg;
  }

  static bool needs_growth(const Shard& shard, std::size_t incoming) {
    const std::uint64_t worst =
        shard.count.load(std::memory_order_acquire) + incoming;
    return worst * 10 >= shard.slot_count * 7;
  }

  void grow(Shard& shard) {
    std::unique_lock<std::shared_mutex> lock(shard.grow_mu);
    // The caller's batch is still registered in `inflight`, so the target
    // capacity covers it (and every other waiting batch); a racing grower
    // may have already done the work, in which case the loop body is
    // skipped entirely.
    while (needs_growth(shard,
                        shard.inflight.load(std::memory_order_acquire))) {
      // Exclusive access: no prober is mid-publication (publication
      // completes under the shared lock), so every reserved slot is
      // published and the entry log is the complete source of truth.
      const std::size_t new_count = shard.slot_count * 2;
      auto new_slots = std::make_unique<Slot[]>(new_count);
      const std::size_t mask = new_count - 1;
      const std::uint32_t entries =
          shard.count.load(std::memory_order_relaxed);
      for (std::uint32_t local = 0; local < entries; ++local) {
        Entry* seg =
            shard.segments[local >> kSegBits].load(std::memory_order_relaxed);
        const Entry& e = seg[local & (kSegSize - 1)];
        std::size_t idx = (e.hash.lo >> kShardBits) & mask;
        while (new_slots[idx].fp.load(std::memory_order_relaxed) != 0) {
          idx = (idx + 1) & mask;
        }
        new_slots[idx].fp.store(nonzero_fp(e.hash),
                                std::memory_order_relaxed);
        new_slots[idx].id.store(
            (local << kShardBits) |
                static_cast<std::uint32_t>(&shard - shards_),
            std::memory_order_relaxed);
      }
      shard.slots = std::move(new_slots);
      shard.slot_count = new_count;
      ++shard.growths;
    }
  }

  void probe_one(Shard& shard, std::uint32_t shard_idx, Candidate& c,
                 WordArena* key_arena, Tally* tally) {
    const std::uint64_t want_fp = nonzero_fp(c.hash);
    const std::size_t mask = shard.slot_count - 1;
    Slot* slots = shard.slots.get();
    std::size_t idx =
        (static_cast<std::size_t>(c.hash.lo) >> kShardBits) & mask;
    while (true) {
      ++tally->probes;
      Slot& slot = slots[idx];
      std::uint64_t seen = slot.fp.load(std::memory_order_acquire);
      if (seen == 0) {
        if (slot.fp.compare_exchange_strong(seen, want_fp,
                                            std::memory_order_acq_rel,
                                            std::memory_order_acquire)) {
          // Reserved. Assign the next local id, copy the key into the
          // caller's persistent arena, write the entry, then publish.
          const std::uint32_t local =
              shard.count.fetch_add(1, std::memory_order_acq_rel);
          LBSA_CHECK_MSG(local < kMaxLocals,
                         "intern table shard id space exhausted");
          Entry* seg = ensure_segment(shard, local);
          Entry& entry = seg[local & (kSegSize - 1)];
          std::int64_t* stored = key_arena->alloc(c.key.size());
          std::copy(c.key.begin(), c.key.end(), stored);
          entry.key = stored;
          entry.len = static_cast<std::uint32_t>(c.key.size());
          entry.hash = c.hash;
          entry.payload = std::move(c.payload);
          const std::uint32_t id = (local << kShardBits) | shard_idx;
          slot.id.store(id, std::memory_order_release);
          c.seq = size_.fetch_add(1, std::memory_order_acq_rel) + 1;
          ++tally->inserts;
          c.id = id;
          c.inserted = true;
          return;
        }
        // Lost the reservation race; `seen` now holds the winner's
        // fingerprint — fall through and treat it like any occupied slot.
        ++tally->cas_retries;
      }
      if (seen == want_fp) {
        // Possibly our key, possibly a fingerprint collision. Wait out the
        // winner's publication (a handful of stores away — it holds the
        // same shared lock, so it cannot be blocked), then verify.
        std::uint32_t id = slot.id.load(std::memory_order_acquire);
        for (int spins = 0; id == kEmpty;
             id = slot.id.load(std::memory_order_acquire)) {
          if (++spins >= 64) {
            std::this_thread::yield();  // single-core scheduling guard
            spins = 0;
          }
        }
        const Entry& entry = entry_of(id);
        if (entry.len == c.key.size() &&
            std::equal(c.key.begin(), c.key.end(), entry.key)) {
          c.id = id;
          c.inserted = false;
          return;
        }
      }
      idx = (idx + 1) & mask;
    }
  }

  Shard shards_[kShardCount];
  std::atomic<std::uint64_t> size_{0};
};

}  // namespace lbsa::modelcheck

#endif  // LBSA_MODELCHECK_BATCH_INTERN_H_
