// Interactive simulation engine: one Config driven step by step, either
// manually (step/crash) or by an Adversary (run). Records the full step
// history for later analysis (task-property checking, diagnostics).
#ifndef LBSA_SIM_SIMULATION_H_
#define LBSA_SIM_SIMULATION_H_

#include <memory>
#include <set>
#include <string>
#include <vector>

#include "sim/config.h"
#include "sim/scheduler.h"

namespace lbsa::sim {

struct RunOptions {
  std::uint64_t max_steps = 1'000'000;
  bool record_history = true;
};

struct RunResult {
  std::uint64_t steps = 0;
  bool all_terminated = false;     // every process decided/aborted/crashed
  bool stopped_by_adversary = false;
  bool hit_step_limit = false;
};

class Simulation {
 public:
  explicit Simulation(std::shared_ptr<const Protocol> protocol);

  const Protocol& protocol() const { return *protocol_; }
  const Config& config() const { return config_; }
  int process_count() const { return protocol_->process_count(); }

  // Single manual step of pid (must be enabled); returns the step taken.
  Step step(int pid, int outcome_choice = 0);

  // Marks pid crashed (idempotent for already-terminated processes).
  void crash(int pid);

  // Drives the simulation with `adversary` until every process terminated,
  // the adversary stops, or max_steps is hit.
  RunResult run(Adversary* adversary, const RunOptions& options = {});

  const std::vector<Step>& history() const { return history_; }

  // Distinct values decided so far, in sorted order.
  std::vector<Value> distinct_decisions() const;
  // The decision of pid (kNil if it has not decided).
  Value decision_of(int pid) const;

  // Resets to the initial configuration and clears the history.
  void reset();

  std::string dump() const;

 private:
  std::shared_ptr<const Protocol> protocol_;
  Config config_;
  std::vector<Step> history_;
};

}  // namespace lbsa::sim

#endif  // LBSA_SIM_SIMULATION_H_
