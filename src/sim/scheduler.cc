#include "sim/scheduler.h"

namespace lbsa::sim {

int Adversary::pick_outcome(int /*outcome_count*/, std::uint64_t /*step*/) {
  return 0;
}

std::vector<int> Adversary::crashes(const Config& /*config*/,
                                    std::uint64_t /*step_index*/) {
  return {};
}

int RoundRobinAdversary::pick_process(const Config& config,
                                      std::uint64_t /*step_index*/) {
  const int n = static_cast<int>(config.procs.size());
  for (int tried = 0; tried < n; ++tried) {
    const int pid = (cursor_ + tried) % n;
    if (config.enabled(pid)) {
      cursor_ = (pid + 1) % n;
      return pid;
    }
  }
  return kStop;
}

int RandomAdversary::pick_process(const Config& config,
                                  std::uint64_t /*step_index*/) {
  std::vector<int> enabled;
  for (int pid = 0; pid < static_cast<int>(config.procs.size()); ++pid) {
    if (config.enabled(pid)) enabled.push_back(pid);
  }
  if (enabled.empty()) return kStop;
  return enabled[rng_.next_below(enabled.size())];
}

int RandomAdversary::pick_outcome(int outcome_count,
                                  std::uint64_t /*step_index*/) {
  if (outcome_count <= 1) return 0;
  return static_cast<int>(
      rng_.next_below(static_cast<std::uint64_t>(outcome_count)));
}

int SoloAdversary::pick_process(const Config& config,
                                std::uint64_t /*step_index*/) {
  return config.enabled(pid_) ? pid_ : kStop;
}

int SoloAdversary::pick_outcome(int outcome_count, std::uint64_t /*step*/) {
  return outcome_choice_ < outcome_count ? outcome_choice_ : 0;
}

int ScriptedAdversary::pick_process(const Config& config,
                                    std::uint64_t /*step_index*/) {
  while (cursor_ < script_.size()) {
    const int pid = script_[cursor_].pid;
    if (config.enabled(pid)) return pid;
    ++cursor_;  // skip steps of already-terminated processes
  }
  return kStop;
}

int ScriptedAdversary::pick_outcome(int outcome_count,
                                    std::uint64_t /*step_index*/) {
  const int choice =
      cursor_ < script_.size() ? script_[cursor_].outcome : 0;
  ++cursor_;
  return choice < outcome_count ? choice : 0;
}

int CrashingAdversary::pick_process(const Config& config,
                                    std::uint64_t step_index) {
  return inner_->pick_process(config, step_index);
}

int CrashingAdversary::pick_outcome(int outcome_count,
                                    std::uint64_t step_index) {
  return inner_->pick_outcome(outcome_count, step_index);
}

std::vector<int> CrashingAdversary::crashes(const Config& /*config*/,
                                            std::uint64_t step_index) {
  std::vector<int> out;
  for (const CrashEvent& e : events_) {
    if (e.step_index == step_index) out.push_back(e.pid);
  }
  return out;
}

}  // namespace lbsa::sim
