#include "sim/scheduler.h"

#include <cstdio>
#include <string>

namespace lbsa::sim {

int Adversary::pick_outcome(int /*outcome_count*/, std::uint64_t /*step*/) {
  return 0;
}

std::vector<int> Adversary::crashes(const Config& /*config*/,
                                    std::uint64_t /*step_index*/) {
  return {};
}

int RoundRobinAdversary::pick_process(const Config& config,
                                      std::uint64_t /*step_index*/) {
  const int n = static_cast<int>(config.procs.size());
  for (int tried = 0; tried < n; ++tried) {
    const int pid = (cursor_ + tried) % n;
    if (config.enabled(pid)) {
      cursor_ = (pid + 1) % n;
      return pid;
    }
  }
  return kStop;
}

int RandomAdversary::pick_process(const Config& config,
                                  std::uint64_t /*step_index*/) {
  std::vector<int> enabled;
  for (int pid = 0; pid < static_cast<int>(config.procs.size()); ++pid) {
    if (config.enabled(pid)) enabled.push_back(pid);
  }
  if (enabled.empty()) return kStop;
  return enabled[rng_.next_below(enabled.size())];
}

int RandomAdversary::pick_outcome(int outcome_count,
                                  std::uint64_t /*step_index*/) {
  if (outcome_count <= 1) return 0;
  return static_cast<int>(
      rng_.next_below(static_cast<std::uint64_t>(outcome_count)));
}

int SoloAdversary::pick_process(const Config& config,
                                std::uint64_t /*step_index*/) {
  return config.enabled(pid_) ? pid_ : kStop;
}

int SoloAdversary::pick_outcome(int outcome_count, std::uint64_t /*step*/) {
  return outcome_choice_ < outcome_count ? outcome_choice_ : 0;
}

void ScriptedAdversary::note(const std::string& message) {
  if (diagnostic_.empty()) {
    std::fprintf(stderr, "ScriptedAdversary: %s\n", message.c_str());
  }
  diagnostic_ += message;
  diagnostic_ += '\n';
}

int ScriptedAdversary::pick_process(const Config& config,
                                    std::uint64_t /*step_index*/) {
  const int n = static_cast<int>(config.procs.size());
  while (cursor_ < script_.size()) {
    const Choice& choice = script_[cursor_];
    if (choice.crash) {
      // Crash entries belong to crashes(); reaching one here means the
      // driver never asked. Skip it rather than step a crashed-on-paper pid.
      note("step " + std::to_string(cursor_) + ": unapplied crash entry !" +
           std::to_string(choice.pid) + " skipped");
      ++cursor_;
      continue;
    }
    if (choice.pid < 0 || choice.pid >= n) {
      note("step " + std::to_string(cursor_) + ": pid " +
           std::to_string(choice.pid) + " out of range [0, " +
           std::to_string(n) + "); stopping");
      cursor_ = script_.size();
      return kStop;
    }
    if (config.enabled(choice.pid)) return choice.pid;
    note("step " + std::to_string(cursor_) + ": skipping p" +
         std::to_string(choice.pid) + " (already terminated)");
    ++cursor_;
  }
  return kStop;
}

int ScriptedAdversary::pick_outcome(int outcome_count,
                                    std::uint64_t /*step_index*/) {
  const int choice =
      cursor_ < script_.size() ? script_[cursor_].outcome : 0;
  ++cursor_;
  if (choice < 0 || choice >= outcome_count) {
    note("step " + std::to_string(cursor_ - 1) + ": outcome choice " +
         std::to_string(choice) + " out of range [0, " +
         std::to_string(outcome_count) + "); using 0");
    return 0;
  }
  return choice;
}

std::vector<int> ScriptedAdversary::crashes(const Config& config,
                                            std::uint64_t /*step_index*/) {
  const int n = static_cast<int>(config.procs.size());
  std::vector<int> out;
  while (cursor_ < script_.size() && script_[cursor_].crash) {
    const int pid = script_[cursor_].pid;
    ++cursor_;
    if (pid < 0 || pid >= n) {
      note("crash entry !" + std::to_string(pid) + " out of range [0, " +
           std::to_string(n) + "); dropped");
      continue;
    }
    out.push_back(pid);
  }
  return out;
}

int CrashingAdversary::pick_process(const Config& config,
                                    std::uint64_t step_index) {
  return inner_->pick_process(config, step_index);
}

int CrashingAdversary::pick_outcome(int outcome_count,
                                    std::uint64_t step_index) {
  return inner_->pick_outcome(outcome_count, step_index);
}

std::vector<int> CrashingAdversary::crashes(const Config& /*config*/,
                                            std::uint64_t step_index) {
  std::vector<int> out;
  for (const CrashEvent& e : events_) {
    if (e.step_index == step_index) out.push_back(e.pid);
  }
  return out;
}

}  // namespace lbsa::sim
