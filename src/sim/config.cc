#include "sim/config.h"

#include <utility>

#include "base/check.h"
#include "base/hashing.h"

namespace lbsa::sim {

std::size_t Config::encoded_size() const {
  std::size_t total = 2;  // procs.size() and objects.size() headers
  for (const ProcessState& ps : procs) total += ps.encoded_size();
  for (const auto& obj : objects) total += 1 + obj.size();
  return total;
}

void Config::encode_into(std::vector<std::int64_t>* out) const {
  out->clear();
  out->reserve(encoded_size());
  out->push_back(static_cast<std::int64_t>(procs.size()));
  for (const ProcessState& ps : procs) ps.encode(out);
  out->push_back(static_cast<std::int64_t>(objects.size()));
  for (const auto& obj : objects) {
    out->push_back(static_cast<std::int64_t>(obj.size()));
    out->insert(out->end(), obj.begin(), obj.end());
  }
}

std::vector<std::int64_t> Config::encode() const {
  std::vector<std::int64_t> out;
  encode_into(&out);
  return out;
}

std::uint64_t Config::hash() const {
  const auto words = encode();
  return hash_words(words);
}

int Config::enabled_count() const {
  int count = 0;
  for (const ProcessState& ps : procs) {
    if (ps.running()) ++count;
  }
  return count;
}

Config initial_config(const Protocol& protocol) {
  Config config;
  const int n = protocol.process_count();
  config.procs.resize(static_cast<size_t>(n));
  for (int pid = 0; pid < n; ++pid) {
    config.procs[static_cast<size_t>(pid)].locals =
        protocol.initial_locals(pid);
  }
  for (const auto& type : protocol.objects()) {
    config.objects.push_back(type->initial_state());
  }
  return config;
}

std::string Step::to_string(const Protocol& protocol) const {
  std::string out = "p" + std::to_string(pid) + ": ";
  switch (action.kind) {
    case Action::Kind::kDecide:
      return out + "decide(" + value_to_string(action.decision) + ")";
    case Action::Kind::kAbort:
      return out + "abort";
    case Action::Kind::kInvoke: {
      const auto& type =
          *protocol.objects()[static_cast<size_t>(action.object_index)];
      out += type.name() + "#" + std::to_string(action.object_index) + "." +
             type.operation_to_string(action.op) + " -> " +
             value_to_string(response);
      if (outcome_choice != 0) {
        out += " [choice " + std::to_string(outcome_choice) + "]";
      }
      return out;
    }
  }
  return out + "?";
}

namespace {

// Shared core: enumerate the outcomes of pid's next action from `config`.
// For each outcome, `emit` is called with the resulting (response, step).
void expand(const Protocol& protocol, const Config& config, int pid,
            std::vector<Successor>* out) {
  LBSA_CHECK_MSG(config.enabled(pid), "stepping a non-running process");
  const ProcessState& ps = config.procs[static_cast<size_t>(pid)];
  const Action action = protocol.next_action(pid, ps);

  if (action.kind == Action::Kind::kDecide ||
      action.kind == Action::Kind::kAbort) {
    Successor succ{config, Step{pid, action, kNil, 0}};
    ProcessState& nps = succ.config.procs[static_cast<size_t>(pid)];
    if (action.kind == Action::Kind::kDecide) {
      nps.status = ProcStatus::kDecided;
      nps.decision = action.decision;
    } else {
      nps.status = ProcStatus::kAborted;
    }
    out->push_back(std::move(succ));
    return;
  }

  LBSA_CHECK(action.object_index >= 0 &&
             static_cast<size_t>(action.object_index) <
                 config.objects.size());
  const spec::ObjectType& type =
      *protocol.objects()[static_cast<size_t>(action.object_index)];
  const Status valid = type.validate(action.op);
  LBSA_CHECK_MSG(valid.is_ok(), valid.to_string().c_str());

  std::vector<spec::Outcome> outcomes;
  type.apply(config.objects[static_cast<size_t>(action.object_index)],
             action.op, &outcomes);
  LBSA_CHECK(!outcomes.empty());

  for (size_t choice = 0; choice < outcomes.size(); ++choice) {
    Successor succ{config,
                   Step{pid, action, outcomes[choice].response,
                        static_cast<int>(choice)}};
    succ.config.objects[static_cast<size_t>(action.object_index)] =
        std::move(outcomes[choice].next_state);
    protocol.on_response(pid, &succ.config.procs[static_cast<size_t>(pid)],
                         outcomes[choice].response);
    out->push_back(std::move(succ));
  }
}

}  // namespace

void enumerate_successors(const Protocol& protocol, const Config& config,
                          int pid, std::vector<Successor>* out) {
  expand(protocol, config, pid, out);
}

Step apply_step(const Protocol& protocol, Config* config, int pid,
                int outcome_choice) {
  std::vector<Successor> succs;
  expand(protocol, *config, pid, &succs);
  LBSA_CHECK_MSG(outcome_choice >= 0 &&
                     static_cast<size_t>(outcome_choice) < succs.size(),
                 "outcome_choice out of range");
  *config = std::move(succs[static_cast<size_t>(outcome_choice)].config);
  return succs[static_cast<size_t>(outcome_choice)].step;
}

int outcome_count(const Protocol& protocol, const Config& config, int pid) {
  std::vector<Successor> succs;
  expand(protocol, config, pid, &succs);
  return static_cast<int>(succs.size());
}

}  // namespace lbsa::sim
