#include "sim/config.h"

#include <utility>

#include "base/check.h"
#include "base/hashing.h"

namespace lbsa::sim {

std::size_t Config::encoded_size() const {
  std::size_t total = 2;  // procs.size() and objects.size() headers
  for (const ProcessState& ps : procs) total += ps.encoded_size();
  for (const auto& obj : objects) total += 1 + obj.size();
  return total;
}

void Config::encode_into(std::vector<std::int64_t>* out) const {
  out->clear();
  out->reserve(encoded_size());
  out->push_back(static_cast<std::int64_t>(procs.size()));
  for (const ProcessState& ps : procs) ps.encode(out);
  out->push_back(static_cast<std::int64_t>(objects.size()));
  for (const auto& obj : objects) {
    out->push_back(static_cast<std::int64_t>(obj.size()));
    out->insert(out->end(), obj.begin(), obj.end());
  }
}

std::int64_t* Config::encode_to(std::int64_t* out) const {
  *out++ = static_cast<std::int64_t>(procs.size());
  for (const ProcessState& ps : procs) out = ps.encode_to(out);
  *out++ = static_cast<std::int64_t>(objects.size());
  for (const auto& obj : objects) {
    *out++ = static_cast<std::int64_t>(obj.size());
    for (std::int64_t w : obj) *out++ = w;
  }
  return out;
}

std::vector<std::int64_t> Config::encode() const {
  std::vector<std::int64_t> out;
  encode_into(&out);
  return out;
}

std::uint64_t Config::hash() const {
  const auto words = encode();
  return hash_words(words);
}

int Config::enabled_count() const {
  int count = 0;
  for (const ProcessState& ps : procs) {
    if (ps.running()) ++count;
  }
  return count;
}

StatusOr<Config> decode_config(std::span<const std::int64_t> words) {
  std::size_t pos = 0;
  auto take = [&](std::int64_t* out) -> bool {
    if (pos >= words.size()) return false;
    *out = words[pos++];
    return true;
  };
  auto malformed = [](const std::string& what) {
    return invalid_argument("decode_config: " + what);
  };

  Config config;
  std::int64_t proc_count = 0;
  if (!take(&proc_count)) return malformed("missing process count");
  if (proc_count < 0 || proc_count > 1'000'000) {
    return malformed("implausible process count " +
                     std::to_string(proc_count));
  }
  config.procs.reserve(static_cast<std::size_t>(proc_count));
  for (std::int64_t i = 0; i < proc_count; ++i) {
    ProcessState ps;
    std::int64_t status = 0;
    std::int64_t local_count = 0;
    if (!take(&status) || !take(&ps.decision) || !take(&ps.pc) ||
        !take(&local_count)) {
      return malformed("truncated process state");
    }
    if (status < 0 || status > static_cast<std::int64_t>(ProcStatus::kCrashed)) {
      return malformed("bad process status " + std::to_string(status));
    }
    ps.status = static_cast<ProcStatus>(status);
    if (local_count < 0 ||
        static_cast<std::size_t>(local_count) > words.size() - pos) {
      return malformed("bad locals count " + std::to_string(local_count));
    }
    ps.locals.assign(words.begin() + static_cast<std::ptrdiff_t>(pos),
                     words.begin() + static_cast<std::ptrdiff_t>(
                                         pos + static_cast<std::size_t>(
                                                   local_count)));
    pos += static_cast<std::size_t>(local_count);
    config.procs.push_back(std::move(ps));
  }
  std::int64_t object_count = 0;
  if (!take(&object_count)) return malformed("missing object count");
  if (object_count < 0 || object_count > 1'000'000) {
    return malformed("implausible object count " +
                     std::to_string(object_count));
  }
  config.objects.reserve(static_cast<std::size_t>(object_count));
  for (std::int64_t i = 0; i < object_count; ++i) {
    std::int64_t size = 0;
    if (!take(&size)) return malformed("truncated object state");
    if (size < 0 || static_cast<std::size_t>(size) > words.size() - pos) {
      return malformed("bad object state size " + std::to_string(size));
    }
    config.objects.emplace_back(
        words.begin() + static_cast<std::ptrdiff_t>(pos),
        words.begin() +
            static_cast<std::ptrdiff_t>(pos + static_cast<std::size_t>(size)));
    pos += static_cast<std::size_t>(size);
  }
  if (pos != words.size()) return malformed("trailing words");
  return config;
}

Config initial_config(const Protocol& protocol) {
  Config config;
  const int n = protocol.process_count();
  config.procs.resize(static_cast<size_t>(n));
  for (int pid = 0; pid < n; ++pid) {
    config.procs[static_cast<size_t>(pid)].locals =
        protocol.initial_locals(pid);
  }
  for (const auto& type : protocol.objects()) {
    config.objects.push_back(type->initial_state());
  }
  return config;
}

std::string Step::to_string(const Protocol& protocol) const {
  std::string out = "p" + std::to_string(pid) + ": ";
  switch (action.kind) {
    case Action::Kind::kDecide:
      return out + "decide(" + value_to_string(action.decision) + ")";
    case Action::Kind::kAbort:
      return out + "abort";
    case Action::Kind::kInvoke: {
      const auto& type =
          *protocol.objects()[static_cast<size_t>(action.object_index)];
      out += type.name() + "#" + std::to_string(action.object_index) + "." +
             type.operation_to_string(action.op) + " -> " +
             value_to_string(response);
      if (outcome_choice != 0) {
        out += " [choice " + std::to_string(outcome_choice) + "]";
      }
      return out;
    }
  }
  return out + "?";
}

namespace {

// Shared core: enumerate the outcomes of pid's next action from `config`.
// For each outcome, `emit` is called with the resulting (response, step).
void expand(const Protocol& protocol, const Config& config, int pid,
            std::vector<Successor>* out) {
  LBSA_CHECK_MSG(config.enabled(pid), "stepping a non-running process");
  const ProcessState& ps = config.procs[static_cast<size_t>(pid)];
  const Action action = protocol.next_action(pid, ps);

  if (action.kind == Action::Kind::kDecide ||
      action.kind == Action::Kind::kAbort) {
    Successor succ{config, Step{pid, action, kNil, 0}};
    ProcessState& nps = succ.config.procs[static_cast<size_t>(pid)];
    if (action.kind == Action::Kind::kDecide) {
      nps.status = ProcStatus::kDecided;
      nps.decision = action.decision;
    } else {
      nps.status = ProcStatus::kAborted;
    }
    out->push_back(std::move(succ));
    return;
  }

  LBSA_CHECK(action.object_index >= 0 &&
             static_cast<size_t>(action.object_index) <
                 config.objects.size());
  const spec::ObjectType& type =
      *protocol.objects()[static_cast<size_t>(action.object_index)];
  const Status valid = type.validate(action.op);
  LBSA_CHECK_MSG(valid.is_ok(), valid.to_string().c_str());

  std::vector<spec::Outcome> outcomes;
  type.apply(config.objects[static_cast<size_t>(action.object_index)],
             action.op, &outcomes);
  LBSA_CHECK(!outcomes.empty());

  for (size_t choice = 0; choice < outcomes.size(); ++choice) {
    Successor succ{config,
                   Step{pid, action, outcomes[choice].response,
                        static_cast<int>(choice)}};
    succ.config.objects[static_cast<size_t>(action.object_index)] =
        std::move(outcomes[choice].next_state);
    protocol.on_response(pid, &succ.config.procs[static_cast<size_t>(pid)],
                         outcomes[choice].response);
    out->push_back(std::move(succ));
  }
}

}  // namespace

void enumerate_successors(const Protocol& protocol, const Config& config,
                          int pid, std::vector<Successor>* out) {
  expand(protocol, config, pid, out);
}

Step apply_step(const Protocol& protocol, Config* config, int pid,
                int outcome_choice) {
  std::vector<Successor> succs;
  expand(protocol, *config, pid, &succs);
  LBSA_CHECK_MSG(outcome_choice >= 0 &&
                     static_cast<size_t>(outcome_choice) < succs.size(),
                 "outcome_choice out of range");
  *config = std::move(succs[static_cast<size_t>(outcome_choice)].config);
  return succs[static_cast<size_t>(outcome_choice)].step;
}

int outcome_count(const Protocol& protocol, const Config& config, int pid) {
  std::vector<Successor> succs;
  expand(protocol, config, pid, &succs);
  return static_cast<int>(succs.size());
}

}  // namespace lbsa::sim
