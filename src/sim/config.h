// Configurations and the one-step transition relation — the exact objects
// the paper's proofs reason about ("configuration C", "step e_p", "history H
// applicable to C"). Both the interactive Simulation and the exhaustive
// model checker are built on these functional semantics.
#ifndef LBSA_SIM_CONFIG_H_
#define LBSA_SIM_CONFIG_H_

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "base/status.h"
#include "sim/action.h"
#include "sim/process_state.h"
#include "sim/protocol.h"

namespace lbsa::sim {

// A global configuration: every process automaton state plus every object
// state. Value-semantic: copies are cheap enough for model checking at the
// paper-relevant scales (n <= 5 processes).
struct Config {
  std::vector<ProcessState> procs;
  std::vector<std::vector<std::int64_t>> objects;

  friend bool operator==(const Config&, const Config&) = default;

  // Canonical word encoding, for hashing/interning.
  std::vector<std::int64_t> encode() const;
  // Fast path for hot loops: clears *out and fills it with the canonical
  // encoding, reserving the exact size up front so a reused buffer never
  // reallocates after warm-up.
  void encode_into(std::vector<std::int64_t>* out) const;
  // Exact number of words encode() produces.
  std::size_t encoded_size() const;
  // Writes the same encoding to a raw buffer of at least encoded_size()
  // words; returns one past the last word written. This is the explorer's
  // arena fast path: the caller bump-allocates exactly encoded_size() words
  // and encodes straight into them, no intermediate vector.
  std::int64_t* encode_to(std::int64_t* out) const;
  std::uint64_t hash() const;

  // True iff pid can take a step (running, not crashed/terminated).
  bool enabled(int pid) const {
    return procs[static_cast<size_t>(pid)].running();
  }
  // Count of enabled processes.
  int enabled_count() const;
  // True iff no process is enabled.
  bool halted() const { return enabled_count() == 0; }
};

// The configuration in which every process is at its initial state and
// every object at its initial state.
Config initial_config(const Protocol& protocol);

// Inverse of Config::encode(): rebuilds a Config from its canonical word
// encoding. INVALID_ARGUMENT on malformed input (bad counts, short buffers,
// trailing words, out-of-range status) — used by the model checker's
// checkpoint loader, which must reject corrupt files rather than crash.
StatusOr<Config> decode_config(std::span<const std::int64_t> words);

// One recorded step: process pid performed `action` and (for invokes)
// received `response` as the outcome_choice-th outcome.
struct Step {
  int pid = -1;
  Action action;
  Value response = kNil;
  int outcome_choice = 0;

  std::string to_string(const Protocol& protocol) const;

  friend bool operator==(const Step&, const Step&) = default;
};

// A successor configuration together with the step that produced it.
struct Successor {
  Config config;
  Step step;
};

// Enumerates every successor of `config` by one step of process pid
// (one per nondeterministic outcome; exactly one for deterministic objects
// and for decide/abort steps). pid must be enabled. The protocol's
// operations are validated on first use per call.
void enumerate_successors(const Protocol& protocol, const Config& config,
                          int pid, std::vector<Successor>* out);

// Applies one specific step choice: pid steps, and if the object is
// nondeterministic, outcome_choice in [0, #outcomes) selects the response.
// Returns the step taken. config is updated in place.
Step apply_step(const Protocol& protocol, Config* config, int pid,
                int outcome_choice);

// Number of distinct outcomes if pid were to step now (>= 1).
int outcome_count(const Protocol& protocol, const Config& config, int pid);

}  // namespace lbsa::sim

#endif  // LBSA_SIM_CONFIG_H_
