#include "sim/process_state.h"

namespace lbsa::sim {

const char* proc_status_name(ProcStatus status) {
  switch (status) {
    case ProcStatus::kRunning:
      return "running";
    case ProcStatus::kDecided:
      return "decided";
    case ProcStatus::kAborted:
      return "aborted";
    case ProcStatus::kCrashed:
      return "crashed";
  }
  return "unknown";
}

void ProcessState::encode(std::vector<std::int64_t>* out) const {
  out->push_back(static_cast<std::int64_t>(status));
  out->push_back(decision);
  out->push_back(pc);
  out->push_back(static_cast<std::int64_t>(locals.size()));
  out->insert(out->end(), locals.begin(), locals.end());
}

std::int64_t* ProcessState::encode_to(std::int64_t* out) const {
  *out++ = static_cast<std::int64_t>(status);
  *out++ = decision;
  *out++ = pc;
  *out++ = static_cast<std::int64_t>(locals.size());
  for (std::int64_t w : locals) *out++ = w;
  return out;
}

std::string ProcessState::to_string() const {
  std::string out = "{";
  out += proc_status_name(status);
  if (decided()) out += " -> " + value_to_string(decision);
  out += ", pc=" + std::to_string(pc);
  out += ", locals=[";
  for (size_t i = 0; i < locals.size(); ++i) {
    if (i > 0) out += ", ";
    out += value_to_string(locals[i]);
  }
  out += "]}";
  return out;
}

}  // namespace lbsa::sim
