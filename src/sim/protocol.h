// The Protocol interface: a distributed algorithm in the paper's model.
//
// A protocol fixes (a) a finite set of shared objects (by sequential
// specification) and (b), for each process, a deterministic automaton over
// (pc, locals). The runtime contract per step of process pid:
//
//   1. action = next_action(pid, state)        // pure function of state
//   2. if action is kInvoke: the runtime applies action.op to the chosen
//      object (picking one outcome if the object is nondeterministic) and
//      calls on_response(pid, &state, response) to advance the automaton;
//   3. if action is kDecide / kAbort: the runtime marks the process
//      terminated (these are local steps; they touch no shared object).
//
// Determinism requirement (the proofs rely on it): next_action must depend
// only on (pid, state), and on_response only on (pid, state, response).
// All nondeterminism in the system lives in the scheduler and in
// nondeterministic objects (the (n,k)-SA family).
#ifndef LBSA_SIM_PROTOCOL_H_
#define LBSA_SIM_PROTOCOL_H_

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "sim/action.h"
#include "sim/process_state.h"
#include "sim/symmetry.h"
#include "spec/object_type.h"

namespace lbsa::sim {

class Protocol {
 public:
  virtual ~Protocol() = default;

  virtual std::string name() const = 0;
  virtual int process_count() const = 0;

  // The shared objects this protocol uses; object_index in Action refers
  // into this vector. Object states are instantiated by the runtime from
  // each type's initial_state().
  virtual const std::vector<std::shared_ptr<const spec::ObjectType>>& objects()
      const = 0;

  // Initial local variables of process pid (must embed the input, if any).
  virtual std::vector<std::int64_t> initial_locals(int pid) const = 0;

  // The next step of pid as a pure function of its state. Only called while
  // the process is running.
  virtual Action next_action(int pid, const ProcessState& state) const = 0;

  // Advance the automaton after an invoke step returned `response`. Must not
  // touch status/decision (termination goes through kDecide/kAbort actions).
  virtual void on_response(int pid, ProcessState* state,
                           Value response) const = 0;

  // Which processes are interchangeable under pid renaming (see
  // sim/symmetry.h for the exact contract). The default declares none, which
  // is always sound; protocols that override it enable symmetry reduction in
  // the model checker. Must be a pure function (same spec every call).
  virtual SymmetrySpec symmetry() const {
    return SymmetrySpec::none(process_count());
  }

  // Rewrites pid-valued words inside a process's locals under the renaming
  // perm (perm[old_pid] = new_pid). The default assumes locals never store
  // pids; protocols whose locals do (labels, process names) must override so
  // renaming commutes with the automaton — and must also override
  // locals_store_pids() to return true. Only relevant with a non-trivial
  // symmetry().
  virtual void rename_locals(std::span<const int> perm,
                             std::vector<std::int64_t>* locals) const {
    (void)perm;
    (void)locals;
  }

  // True iff rename_locals is a real rewrite (locals store pids). Paired
  // with rename_locals: overriding one without the other breaks the
  // canonical search, which skips per-permutation locals renaming — and
  // disables its already-canonical fast path — only when this is false.
  // The oracle cross-check in tests/sim/symmetry_test.cc catches a
  // violated pairing for every tested protocol.
  virtual bool locals_store_pids() const { return false; }
};

// Convenience base carrying the common plumbing (name, object list, count).
class ProtocolBase : public Protocol {
 public:
  ProtocolBase(std::string name, int process_count,
               std::vector<std::shared_ptr<const spec::ObjectType>> objects)
      : name_(std::move(name)),
        process_count_(process_count),
        objects_(std::move(objects)) {}

  std::string name() const override { return name_; }
  int process_count() const override { return process_count_; }
  const std::vector<std::shared_ptr<const spec::ObjectType>>& objects()
      const override {
    return objects_;
  }

 private:
  std::string name_;
  int process_count_;
  std::vector<std::shared_ptr<const spec::ObjectType>> objects_;
};

}  // namespace lbsa::sim

#endif  // LBSA_SIM_PROTOCOL_H_
