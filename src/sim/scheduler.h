// Adversaries (schedulers) for the asynchronous model. The adversary owns
// *all* nondeterminism of a run: which enabled process steps next, which
// outcome a nondeterministic object returns (the "arbitrarily selected"
// member of a 2-SA STATE), and which processes crash.
#ifndef LBSA_SIM_SCHEDULER_H_
#define LBSA_SIM_SCHEDULER_H_

#include <cstdint>
#include <vector>

#include "base/rng.h"
#include "sim/config.h"

namespace lbsa::sim {

class Adversary {
 public:
  virtual ~Adversary() = default;

  // Picks the next process to step, among enabled ones; returns kStop to end
  // the run. step_index counts steps taken so far.
  static constexpr int kStop = -1;
  virtual int pick_process(const Config& config, std::uint64_t step_index) = 0;

  // Picks among outcome_count possible outcomes of the chosen step.
  // Default: the first (deterministic objects have exactly one).
  virtual int pick_outcome(int outcome_count, std::uint64_t step_index);

  // Processes to crash *before* the step at step_index (default: none).
  virtual std::vector<int> crashes(const Config& config,
                                   std::uint64_t step_index);
};

// Cycles over processes in pid order, skipping non-enabled ones.
class RoundRobinAdversary : public Adversary {
 public:
  int pick_process(const Config& config, std::uint64_t step_index) override;

 private:
  int cursor_ = 0;
};

// Uniformly random process and outcome choices, fully determined by seed.
class RandomAdversary : public Adversary {
 public:
  explicit RandomAdversary(std::uint64_t seed) : rng_(seed) {}

  int pick_process(const Config& config, std::uint64_t step_index) override;
  int pick_outcome(int outcome_count, std::uint64_t step_index) override;

 private:
  Xoshiro256 rng_;
};

// Runs a single process solo (Termination(a)/(b)-style runs). Stops when
// that process terminates.
class SoloAdversary : public Adversary {
 public:
  explicit SoloAdversary(int pid, int outcome_choice = 0)
      : pid_(pid), outcome_choice_(outcome_choice) {}

  int pick_process(const Config& config, std::uint64_t step_index) override;
  int pick_outcome(int outcome_count, std::uint64_t step_index) override;

 private:
  int pid_;
  int outcome_choice_;
};

// Replays an explicit schedule of (pid, outcome) step entries and crash
// events, then stops. Entries are validated against the configuration:
// an out-of-range pid ends the run with kStop (and a logged diagnostic)
// instead of indexing blindly; entries naming a process that already
// terminated are skipped; an out-of-range outcome choice falls back to 0.
// Every such repair is recorded in diagnostic().
class ScriptedAdversary : public Adversary {
 public:
  struct Choice {
    int pid;
    int outcome = 0;
    // True: crash `pid` before the next step instead of stepping it.
    bool crash = false;

    friend bool operator==(const Choice&, const Choice&) = default;
  };
  explicit ScriptedAdversary(std::vector<Choice> script)
      : script_(std::move(script)) {}

  int pick_process(const Config& config, std::uint64_t step_index) override;
  int pick_outcome(int outcome_count, std::uint64_t step_index) override;
  // Serves the script's crash entries (Simulation::run applies these before
  // each step). Out-of-range pids are dropped with a diagnostic.
  std::vector<int> crashes(const Config& config,
                           std::uint64_t step_index) override;

  // Human-readable log of every script repair (empty if the script replayed
  // verbatim). The first problem is also printed to stderr.
  const std::string& diagnostic() const { return diagnostic_; }

 private:
  void note(const std::string& message);

  std::vector<Choice> script_;
  size_t cursor_ = 0;
  std::string diagnostic_;
};

// Wraps another adversary and injects crashes: crash_at[i] = (step, pid).
class CrashingAdversary : public Adversary {
 public:
  struct CrashEvent {
    std::uint64_t step_index;
    int pid;
  };
  CrashingAdversary(Adversary* inner, std::vector<CrashEvent> events)
      : inner_(inner), events_(std::move(events)) {}

  int pick_process(const Config& config, std::uint64_t step_index) override;
  int pick_outcome(int outcome_count, std::uint64_t step_index) override;
  std::vector<int> crashes(const Config& config,
                           std::uint64_t step_index) override;

 private:
  Adversary* inner_;  // not owned
  std::vector<CrashEvent> events_;
};

}  // namespace lbsa::sim

#endif  // LBSA_SIM_SCHEDULER_H_
