// The three kinds of step a process can take: apply one operation to one
// shared object (the only kind the bivalency proofs count), decide, or abort.
#ifndef LBSA_SIM_ACTION_H_
#define LBSA_SIM_ACTION_H_

#include <string>

#include "base/values.h"
#include "spec/object_type.h"

namespace lbsa::sim {

struct Action {
  enum class Kind : std::int8_t { kInvoke = 0, kDecide, kAbort };

  Kind kind = Kind::kInvoke;
  int object_index = -1;    // kInvoke: which shared object
  spec::Operation op;       // kInvoke: the operation to apply
  Value decision = kNil;    // kDecide: the decision value

  static Action invoke(int object_index, spec::Operation op) {
    Action a;
    a.kind = Kind::kInvoke;
    a.object_index = object_index;
    a.op = op;
    return a;
  }
  static Action decide(Value v) {
    Action a;
    a.kind = Kind::kDecide;
    a.decision = v;
    return a;
  }
  static Action abort() {
    Action a;
    a.kind = Kind::kAbort;
    return a;
  }

  friend bool operator==(const Action&, const Action&) = default;
};

}  // namespace lbsa::sim

#endif  // LBSA_SIM_ACTION_H_
