// Per-process state in the paper's asynchronous shared-memory model.
//
// A process is a deterministic automaton: its entire state is a program
// counter plus a vector of local variables (which includes its input), and a
// terminal status. This flattened representation is what the bivalency
// arguments of Sections 4 and 5 quantify over ("p has the same state in C as
// in C'"), so we keep it explicitly comparable and hashable.
#ifndef LBSA_SIM_PROCESS_STATE_H_
#define LBSA_SIM_PROCESS_STATE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "base/values.h"

namespace lbsa::sim {

enum class ProcStatus : std::int8_t {
  kRunning = 0,
  kDecided,
  kAborted,  // only the distinguished process of a DAC task ever aborts
  kCrashed,
};

const char* proc_status_name(ProcStatus status);

struct ProcessState {
  ProcStatus status = ProcStatus::kRunning;
  Value decision = kNil;  // meaningful iff status == kDecided
  std::int64_t pc = 0;
  std::vector<std::int64_t> locals;

  bool running() const { return status == ProcStatus::kRunning; }
  bool decided() const { return status == ProcStatus::kDecided; }
  bool aborted() const { return status == ProcStatus::kAborted; }
  bool crashed() const { return status == ProcStatus::kCrashed; }

  // Appends a canonical word encoding (for configuration hashing).
  void encode(std::vector<std::int64_t>* out) const;

  // Writes the same encoding to a raw buffer of at least encoded_size()
  // words; returns one past the last word written. Arena fast path for the
  // explorer: no vector growth checks per word.
  std::int64_t* encode_to(std::int64_t* out) const;

  // Exact number of words encode() appends — lets callers reserve once.
  std::size_t encoded_size() const { return 4 + locals.size(); }

  std::string to_string() const;

  friend bool operator==(const ProcessState&, const ProcessState&) = default;
};

}  // namespace lbsa::sim

#endif  // LBSA_SIM_PROCESS_STATE_H_
