#include "sim/symmetry.h"

#include <algorithm>
#include <string>
#include <utility>

#include "base/check.h"
#include "sim/config.h"
#include "sim/protocol.h"
#include "spec/object_type.h"

namespace lbsa::sim {
namespace {

// Generous backstop against accidental factorial blow-ups (S_8 = 40320 fits;
// nobody should canonicalize against a larger group element-by-element).
constexpr std::uint64_t kMaxGroupSize = 100'000;

std::uint64_t hash_string(std::uint64_t h, const std::string& s) {
  h = hash_combine(h, s.size());
  for (char c : s) h = hash_combine(h, static_cast<unsigned char>(c));
  return h;
}

}  // namespace

SymmetrySpec SymmetrySpec::none(int n) {
  SymmetrySpec spec;
  spec.orbit_of.resize(static_cast<std::size_t>(n));
  for (int p = 0; p < n; ++p) spec.orbit_of[static_cast<std::size_t>(p)] = p;
  return spec;
}

SymmetrySpec SymmetrySpec::full(int n) {
  SymmetrySpec spec;
  spec.orbit_of.assign(static_cast<std::size_t>(n), 0);
  return spec;
}

SymmetrySpec SymmetrySpec::by_value(const std::vector<std::int64_t>& keys,
                                    const std::vector<int>& fixed) {
  const int n = static_cast<int>(keys.size());
  SymmetrySpec spec;
  spec.orbit_of.assign(static_cast<std::size_t>(n), -1);
  std::vector<bool> is_fixed(static_cast<std::size_t>(n), false);
  for (int pid : fixed) {
    LBSA_CHECK(pid >= 0 && pid < n);
    is_fixed[static_cast<std::size_t>(pid)] = true;
  }
  int next_orbit = 0;
  for (int p = 0; p < n; ++p) {
    if (spec.orbit_of[static_cast<std::size_t>(p)] != -1) continue;
    spec.orbit_of[static_cast<std::size_t>(p)] = next_orbit;
    if (!is_fixed[static_cast<std::size_t>(p)]) {
      for (int q = p + 1; q < n; ++q) {
        if (spec.orbit_of[static_cast<std::size_t>(q)] == -1 &&
            !is_fixed[static_cast<std::size_t>(q)] &&
            keys[static_cast<std::size_t>(q)] ==
                keys[static_cast<std::size_t>(p)]) {
          spec.orbit_of[static_cast<std::size_t>(q)] = next_orbit;
        }
      }
    }
    ++next_orbit;
  }
  return spec;
}

bool SymmetrySpec::trivial() const {
  for (int p = 0; p < process_count(); ++p) {
    if (!is_singleton(p)) return false;
  }
  return true;
}

bool SymmetrySpec::is_singleton(int pid) const {
  const int id = orbit_of[static_cast<std::size_t>(pid)];
  for (int q = 0; q < process_count(); ++q) {
    if (q != pid && orbit_of[static_cast<std::size_t>(q)] == id) return false;
  }
  return true;
}

std::vector<std::vector<int>> symmetry_group(const SymmetrySpec& spec) {
  const int n = spec.process_count();
  // Bucket pids by orbit id, in first-seen order; members stay ascending.
  std::vector<int> seen_ids;
  std::vector<std::vector<int>> buckets;
  for (int p = 0; p < n; ++p) {
    const int id = spec.orbit_of[static_cast<std::size_t>(p)];
    std::size_t bucket = seen_ids.size();
    for (std::size_t i = 0; i < seen_ids.size(); ++i) {
      if (seen_ids[i] == id) {
        bucket = i;
        break;
      }
    }
    if (bucket == seen_ids.size()) {
      seen_ids.push_back(id);
      buckets.emplace_back();
    }
    buckets[bucket].push_back(p);
  }

  // Non-singleton orbit sizes, for the too-large diagnostic: the group
  // order is the product of their factorials, so the message names exactly
  // the numbers whose factorials blew the budget.
  std::vector<std::size_t> orbit_sizes;
  for (const std::vector<int>& bucket : buckets) {
    if (bucket.size() >= 2) orbit_sizes.push_back(bucket.size());
  }
  auto too_large_message = [&orbit_sizes]() {
    std::string msg = "symmetry group too large to enumerate: orbit sizes {";
    for (std::size_t i = 0; i < orbit_sizes.size(); ++i) {
      if (i > 0) msg += ", ";
      msg += std::to_string(orbit_sizes[i]);
    }
    msg += "} give more than " + std::to_string(kMaxGroupSize) +
           " permutations (the group order is the product of the "
           "orbit-size factorials); shrink the largest orbit by declaring "
           "distinct keys or listing more pids as fixed in "
           "SymmetrySpec::by_value";
    return msg;
  };

  // For each non-singleton orbit, enumerate all arrangements of its members
  // (std::next_permutation from the sorted arrangement, so the identity
  // arrangement comes first and the order is deterministic).
  std::vector<std::vector<int>> members;
  std::vector<std::vector<std::vector<int>>> arrangements;
  std::uint64_t total = 1;
  for (const std::vector<int>& bucket : buckets) {
    if (bucket.size() < 2) continue;
    std::vector<std::vector<int>> arrs;
    std::vector<int> arr = bucket;
    do {
      arrs.push_back(arr);
      if (total * arrs.size() > kMaxGroupSize) {
        LBSA_CHECK_MSG(false, too_large_message().c_str());
      }
    } while (std::next_permutation(arr.begin(), arr.end()));
    total *= arrs.size();
    members.push_back(bucket);
    arrangements.push_back(std::move(arrs));
  }

  // Cartesian product over orbits (last orbit cycles fastest). With every
  // odometer digit at its first position the result is the identity.
  std::vector<std::vector<int>> group;
  group.reserve(static_cast<std::size_t>(total));
  std::vector<std::size_t> odometer(members.size(), 0);
  for (;;) {
    std::vector<int> perm(static_cast<std::size_t>(n));
    for (int p = 0; p < n; ++p) perm[static_cast<std::size_t>(p)] = p;
    for (std::size_t oi = 0; oi < members.size(); ++oi) {
      const std::vector<int>& arr = arrangements[oi][odometer[oi]];
      for (std::size_t j = 0; j < arr.size(); ++j) {
        perm[static_cast<std::size_t>(members[oi][j])] = arr[j];
      }
    }
    group.push_back(std::move(perm));
    std::size_t k = members.size();
    for (;;) {
      if (k == 0) return group;
      --k;
      if (++odometer[k] < arrangements[k].size()) break;
      odometer[k] = 0;
      if (k == 0) return group;
    }
  }
}

void apply_pid_permutation(const Protocol& protocol, std::span<const int> perm,
                           Config* config) {
  const std::size_t n = config->procs.size();
  LBSA_CHECK(perm.size() == n);
  std::vector<ProcessState> renamed(n);
  for (std::size_t p = 0; p < n; ++p) {
    ProcessState moved = std::move(config->procs[p]);
    protocol.rename_locals(perm, &moved.locals);
    renamed[static_cast<std::size_t>(perm[p])] = std::move(moved);
  }
  config->procs = std::move(renamed);
  const auto& types = protocol.objects();
  for (std::size_t i = 0; i < config->objects.size(); ++i) {
    types[i]->rename_pids(perm, &config->objects[i]);
  }
}

// ---------------------------------------------------------------------------
// CanonCache

CanonCache::CanonCache(std::size_t bytes) {
  constexpr std::size_t kMinBytes = std::size_t{1} << 12;  // 4 KiB floor
  if (bytes < kMinBytes) bytes = kMinBytes;
  // Slot headers take a small slice of the budget (~1/16th): zeroing them
  // is the entire constructor cost — which sits on explore()'s critical
  // path — and entries are hundreds of words each, so a few thousand slots
  // already outnumber what the arena can hold. The rest is payload arena.
  // The slot count rounds to a power of two so fp.lo masks straight in.
  std::size_t slots = 64;
  while (slots * 2 * sizeof(Slot) * 16 <= bytes) slots *= 2;
  slots_.resize(slots);
  std::size_t arena_words =
      (bytes - slots * sizeof(Slot)) / sizeof(std::int64_t);
  if (arena_words < 1024) arena_words = 1024;
  arena_.reset(new std::int64_t[arena_words]);  // uninitialized on purpose
  arena_capacity_ = arena_words;
}

void CanonCache::clear() {
  for (Slot& s : slots_) s.used = false;
  arena_used_ = 0;
}

void CanonCache::ensure_universe(std::uint64_t salt) {
  if (salt == universe_salt_) return;
  universe_salt_ = salt;
  clear();
}

bool CanonCache::lookup(const Hash128& fp, std::span<const std::int64_t> raw,
                        std::vector<std::int64_t>* out,
                        std::vector<std::uint8_t>* perm) const {
  const Slot& s = slots_[fp.lo & (slots_.size() - 1)];
  if (!s.used || !(s.fp == fp)) return false;
  if (s.raw_len != raw.size()) return false;
  const std::int64_t* base = arena_.get() + s.offset;
  // Fingerprint equality is probabilistic; the full raw-key verify makes
  // the hit exact (same policy as the interning table, base/hashing.h).
  if (!std::equal(raw.begin(), raw.end(), base)) return false;
  // canon_len == 0 marks a shared entry: the raw words double as the
  // canonical encoding (identity perm), stored once.
  const std::int64_t* canon = base + s.raw_len;
  if (s.canon_len == 0) {
    out->assign(base, base + s.raw_len);
  } else {
    out->assign(canon, canon + s.canon_len);
  }
  if (perm != nullptr) {
    perm->clear();
    const std::int64_t* pw = canon + s.canon_len;
    for (std::uint32_t i = 0; i < s.perm_len; ++i) {
      perm->push_back(static_cast<std::uint8_t>(pw[i]));
    }
  }
  return true;
}

void CanonCache::insert(const Hash128& fp, std::span<const std::int64_t> raw,
                        std::span<const std::int64_t> canon,
                        std::span<const std::uint8_t> perm) {
  // Already-canonical entries (identity perm, canon == raw word-for-word)
  // are the common case on reduced frontiers; store the words once and mark
  // them shared with canon_len == 0. The equality check is a cheap memcmp
  // next to the 2x copy + arena space it saves.
  const bool shared = perm.empty() && canon.size() == raw.size() &&
                      std::equal(raw.begin(), raw.end(), canon.begin());
  const std::size_t need =
      raw.size() + (shared ? 0 : canon.size()) + perm.size();
  if (need > arena_capacity_) return;  // pathological config; skip caching
  if (arena_used_ + need > arena_capacity_) {
    // Epoch reset: dropping the whole (lossy) cache is cheaper and simpler
    // than tracking per-slot liveness, and the hot entries repopulate from
    // the very next frontier level.
    clear();
    ++epoch_resets_;
  }
  Slot& s = slots_[fp.lo & (slots_.size() - 1)];
  std::int64_t* base = arena_.get() + arena_used_;
  std::copy(raw.begin(), raw.end(), base);
  if (!shared) std::copy(canon.begin(), canon.end(), base + raw.size());
  std::int64_t* pw = base + raw.size() + (shared ? 0 : canon.size());
  for (std::uint8_t p : perm) *pw++ = static_cast<std::int64_t>(p);
  s.fp = fp;
  s.offset = static_cast<std::uint32_t>(arena_used_);
  s.raw_len = static_cast<std::uint32_t>(raw.size());
  s.canon_len = shared ? 0 : static_cast<std::uint32_t>(canon.size());
  s.perm_len = static_cast<std::uint32_t>(perm.size());
  s.used = true;
  arena_used_ += need;
}

CanonCachePool::CanonCachePool(std::size_t bytes_per_worker)
    : bytes_per_worker_(bytes_per_worker) {}

std::shared_ptr<CanonCache> CanonCachePool::worker_cache(std::size_t worker,
                                                         std::uint64_t salt) {
  std::shared_ptr<CanonCache> cache;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (caches_.size() <= worker) caches_.resize(worker + 1);
    if (caches_[worker] == nullptr) {
      caches_[worker] = std::make_shared<CanonCache>(bytes_per_worker_);
    }
    cache = caches_[worker];
  }
  cache->ensure_universe(salt);
  return cache;
}

// ---------------------------------------------------------------------------
// Canonicalizer

Canonicalizer::Canonicalizer(std::shared_ptr<const Protocol> protocol,
                             SymmetrySpec spec)
    : protocol_(std::move(protocol)), spec_(std::move(spec)) {
  LBSA_CHECK(protocol_ != nullptr);
  LBSA_CHECK_MSG(spec_.process_count() == protocol_->process_count(),
                 "SymmetrySpec size != protocol process count");
  group_ = symmetry_group(spec_);
  const int n = spec_.process_count();
  // Inverse permutations: group_inv_[g][slot] = the pid whose state lands
  // in `slot` under group_[g] — the order a permuted encoding walks the
  // original processes in, which is what the incremental search iterates.
  group_inv_.resize(group_.size());
  for (std::size_t g = 0; g < group_.size(); ++g) {
    group_inv_[g].resize(static_cast<std::size_t>(n));
    for (int p = 0; p < n; ++p) {
      group_inv_[g][static_cast<std::size_t>(group_[g][static_cast<std::size_t>(p)])] = p;
    }
  }
  // Non-singleton orbits as ascending pid lists (already-canonical check).
  std::vector<int> seen_ids;
  std::vector<std::vector<int>> buckets;
  for (int p = 0; p < n; ++p) {
    const int id = spec_.orbit_of[static_cast<std::size_t>(p)];
    std::size_t bucket = seen_ids.size();
    for (std::size_t i = 0; i < seen_ids.size(); ++i) {
      if (seen_ids[i] == id) {
        bucket = i;
        break;
      }
    }
    if (bucket == seen_ids.size()) {
      seen_ids.push_back(id);
      buckets.emplace_back();
    }
    buckets[bucket].push_back(p);
  }
  for (std::vector<int>& bucket : buckets) {
    if (bucket.size() >= 2) nontrivial_orbits_.push_back(std::move(bucket));
  }
  locals_pid_free_ = !protocol_->locals_store_pids();
  const auto& types = protocol_->objects();
  object_renames_pids_.reserve(types.size());
  for (const auto& type : types) {
    object_renames_pids_.push_back(type->renames_pids());
  }
  // Universe fingerprint for CanonCache sharing: protocol name, process
  // count, orbit partition, and object shapes (type names + initial
  // states). Two canonicalizers with equal salts canonicalize identically
  // for every config either could meet, so a cache keyed on it never
  // serves a stale entry across hierarchy-sweep cells.
  std::uint64_t h = hash_string(0x5ca1ab1eULL, protocol_->name());
  h = hash_combine(h, static_cast<std::uint64_t>(n));
  for (int id : spec_.orbit_of) {
    h = hash_combine(h, static_cast<std::uint64_t>(id));
  }
  h = hash_combine(h, types.size());
  for (const auto& type : types) {
    h = hash_string(h, type->name());
    const std::vector<std::int64_t> init = type->initial_state();
    h = hash_combine(h, init.size());
    for (std::int64_t w : init) h = hash_combine(h, static_cast<std::uint64_t>(w));
  }
  universe_salt_ = h;
  // Soundness gate: the whole group must fix the initial configuration
  // (otherwise "renamed runs" would be runs of a different instance). The
  // group is generated by transpositions of adjacent orbit members, so
  // checking those suffices — and catches unequal initial locals eagerly.
  const Config initial = initial_config(*protocol_);
  for (int p = 0; p < n; ++p) {
    for (int q = p + 1; q < n; ++q) {
      if (spec_.orbit_of[static_cast<std::size_t>(p)] !=
          spec_.orbit_of[static_cast<std::size_t>(q)]) {
        continue;
      }
      std::vector<int> transposition(static_cast<std::size_t>(n));
      for (int r = 0; r < n; ++r) {
        transposition[static_cast<std::size_t>(r)] = r;
      }
      std::swap(transposition[static_cast<std::size_t>(p)],
                transposition[static_cast<std::size_t>(q)]);
      Config swapped = initial;
      apply_pid_permutation(*protocol_, transposition, &swapped);
      LBSA_CHECK_MSG(swapped == initial,
                     "SymmetrySpec groups processes with distinct initial "
                     "configurations (unequal inputs?)");
    }
  }
}

int Canonicalizer::compare_permuted_(const Config& config, std::size_t g,
                                     std::span<const std::int64_t> best,
                                     bool best_is_identity,
                                     CanonScratch* scratch) const {
  const std::vector<int>& perm = group_[g];
  const std::vector<int>& inv = group_inv_[g];
  const std::int64_t* b = best.data();
  // Word 0 (procs.size()) is renaming-invariant; start past it. The same
  // holds for the objects.size() word below. Matching prefixes keep both
  // walks structurally aligned: a length divergence in a process segment
  // shows up at its nlocals word (position 3) and in an object segment at
  // its size word, so every compare below reads `b` in bounds.
  std::size_t pos = 1;
  const std::size_t n = config.procs.size();
  for (std::size_t slot = 0; slot < n; ++slot) {
    const ProcessState& ps =
        config.procs[static_cast<std::size_t>(inv[slot])];
    if (best_is_identity && locals_pid_free_ &&
        inv[slot] == static_cast<int>(slot)) {
      // `best` is the identity encoding and this permutation does not move
      // this slot, so (with pid-free locals) the permuted block here is
      // word-for-word the block already in `best` — skip it. This is the
      // common big win: a pinned distinguished process's (often largest)
      // block is never re-compared against itself.
      pos += 4 + ps.locals.size();
      continue;
    }
    std::int64_t w = static_cast<std::int64_t>(ps.status);
    if (w != b[pos]) return w < b[pos] ? -1 : 1;
    ++pos;
    if (ps.decision != b[pos]) return ps.decision < b[pos] ? -1 : 1;
    ++pos;
    if (ps.pc != b[pos]) return ps.pc < b[pos] ? -1 : 1;
    ++pos;
    std::span<const std::int64_t> locals = ps.locals;
    if (!locals_pid_free_) {
      scratch->loc_scratch_.assign(ps.locals.begin(), ps.locals.end());
      protocol_->rename_locals(perm, &scratch->loc_scratch_);
      locals = scratch->loc_scratch_;
    }
    w = static_cast<std::int64_t>(locals.size());
    if (w != b[pos]) return w < b[pos] ? -1 : 1;
    ++pos;
    for (std::int64_t lw : locals) {
      if (lw != b[pos]) return lw < b[pos] ? -1 : 1;
      ++pos;
    }
  }
  ++pos;  // objects.size(), renaming-invariant
  const auto& types = protocol_->objects();
  for (std::size_t i = 0; i < config.objects.size(); ++i) {
    std::span<const std::int64_t> state = config.objects[i];
    if (best_is_identity && !object_renames_pids_[i]) {
      // Same skip as for unmoved process slots: a pid-free object's words
      // are renaming-invariant, so against the identity encoding they
      // compare equal by construction.
      pos += 1 + state.size();
      continue;
    }
    if (object_renames_pids_[i]) {
      scratch->obj_scratch_.assign(state.begin(), state.end());
      types[i]->rename_pids(perm, &scratch->obj_scratch_);
      state = scratch->obj_scratch_;
    }
    std::int64_t w = static_cast<std::int64_t>(state.size());
    if (w != b[pos]) return w < b[pos] ? -1 : 1;
    ++pos;
    for (std::int64_t sw : state) {
      if (sw != b[pos]) return sw < b[pos] ? -1 : 1;
      ++pos;
    }
  }
  return 0;
}

void Canonicalizer::encode_permuted_(const Config& config, std::size_t g,
                                     std::vector<std::int64_t>* out,
                                     CanonScratch* scratch) const {
  const std::vector<int>& perm = group_[g];
  const std::vector<int>& inv = group_inv_[g];
  out->clear();
  out->reserve(config.encoded_size());
  const std::size_t n = config.procs.size();
  out->push_back(static_cast<std::int64_t>(n));
  for (std::size_t slot = 0; slot < n; ++slot) {
    const ProcessState& ps =
        config.procs[static_cast<std::size_t>(inv[slot])];
    out->push_back(static_cast<std::int64_t>(ps.status));
    out->push_back(ps.decision);
    out->push_back(ps.pc);
    std::span<const std::int64_t> locals = ps.locals;
    if (!locals_pid_free_) {
      scratch->loc_scratch_.assign(ps.locals.begin(), ps.locals.end());
      protocol_->rename_locals(perm, &scratch->loc_scratch_);
      locals = scratch->loc_scratch_;
    }
    out->push_back(static_cast<std::int64_t>(locals.size()));
    out->insert(out->end(), locals.begin(), locals.end());
  }
  out->push_back(static_cast<std::int64_t>(config.objects.size()));
  const auto& types = protocol_->objects();
  for (std::size_t i = 0; i < config.objects.size(); ++i) {
    std::span<const std::int64_t> state = config.objects[i];
    if (object_renames_pids_[i]) {
      scratch->obj_scratch_.assign(state.begin(), state.end());
      types[i]->rename_pids(perm, &scratch->obj_scratch_);
      state = scratch->obj_scratch_;
    }
    out->push_back(static_cast<std::int64_t>(state.size()));
    out->insert(out->end(), state.begin(), state.end());
  }
}

namespace {

// Three-way compare of two per-process encoding blocks in encoding order
// (status, decision, pc, nlocals, locals...). Only meaningful when locals
// are pid-free (no renaming can change either block's words).
int proc_block_cmp(const ProcessState& a, const ProcessState& b) {
  const std::int64_t sa = static_cast<std::int64_t>(a.status);
  const std::int64_t sb = static_cast<std::int64_t>(b.status);
  if (sa != sb) return sa < sb ? -1 : 1;
  if (a.decision != b.decision) return a.decision < b.decision ? -1 : 1;
  if (a.pc != b.pc) return a.pc < b.pc ? -1 : 1;
  if (a.locals.size() != b.locals.size()) {
    return a.locals.size() < b.locals.size() ? -1 : 1;
  }
  const auto mismatch =
      std::mismatch(a.locals.begin(), a.locals.end(), b.locals.begin());
  if (mismatch.first == a.locals.end()) return 0;
  return *mismatch.first < *mismatch.second ? -1 : 1;
}

}  // namespace

bool Canonicalizer::identity_minimal_(const Config& config) const {
  // With pid-free locals, a permuted encoding first differs from the
  // identity encoding at the first *moved* slot p, which (slots before it
  // being fixed, renamings staying inside orbits) receives an orbit mate
  // q > p. If per-process encodings are strictly increasing within every
  // orbit, that difference is strictly greater — for every non-identity
  // group element — so the identity encoding is the unique minimum.
  // Strictness matters: equal orbit mates would push the tiebreak into the
  // object words, which this check never looks at.
  for (const std::vector<int>& orbit : nontrivial_orbits_) {
    for (std::size_t j = 1; j < orbit.size(); ++j) {
      const ProcessState& a =
          config.procs[static_cast<std::size_t>(orbit[j - 1])];
      const ProcessState& b =
          config.procs[static_cast<std::size_t>(orbit[j])];
      if (proc_block_cmp(a, b) >= 0) return false;  // equal is not strict
    }
  }
  return true;
}

int Canonicalizer::compare_permuted_identity_(const Config& config,
                                              std::size_t g,
                                              CanonScratch* scratch) const {
  const int n = spec_.process_count();
  const std::vector<int>& inv = group_inv_[g];
  // scratch->pair_cmp_ is reset to kUnknown once per canonicalization (see
  // canonical_encode_into); entries are shared by all rivals of that call.
  constexpr std::int8_t kUnknown = 2;
  std::vector<std::int8_t>& memo = scratch->pair_cmp_;
  for (int slot = 0; slot < n; ++slot) {
    const int src = inv[static_cast<std::size_t>(slot)];
    if (src == slot) continue;
    const std::size_t idx =
        static_cast<std::size_t>(src) * static_cast<std::size_t>(n) +
        static_cast<std::size_t>(slot);
    std::int8_t c = memo[idx];
    if (c == kUnknown) {
      c = static_cast<std::int8_t>(
          proc_block_cmp(config.procs[static_cast<std::size_t>(src)],
                         config.procs[static_cast<std::size_t>(slot)]));
      memo[idx] = c;
      const std::size_t rev =
          static_cast<std::size_t>(slot) * static_cast<std::size_t>(n) +
          static_cast<std::size_t>(src);
      memo[rev] = static_cast<std::int8_t>(-c);
    }
    if (c != 0) return c;
  }
  // Every moved slot's blocks tie, so the encodings agree through the whole
  // process section (equal blocks ⇒ equal lengths ⇒ aligned positions) and
  // the renaming objects decide. Pid-free objects are renaming-invariant
  // and compare equal against the identity encoding by construction.
  const std::vector<int>& perm = group_[g];
  const auto& types = protocol_->objects();
  for (std::size_t i = 0; i < config.objects.size(); ++i) {
    if (!object_renames_pids_[i]) continue;
    const std::vector<std::int64_t>& state = config.objects[i];
    scratch->obj_scratch_.assign(state.begin(), state.end());
    types[i]->rename_pids(perm, &scratch->obj_scratch_);
    const std::vector<std::int64_t>& renamed = scratch->obj_scratch_;
    // The encoding prefixes each object with its word count, so a length
    // divergence decides at that size word.
    if (renamed.size() != state.size()) {
      return renamed.size() < state.size() ? -1 : 1;
    }
    const auto mismatch =
        std::mismatch(renamed.begin(), renamed.end(), state.begin());
    if (mismatch.first != renamed.end()) {
      return *mismatch.first < *mismatch.second ? -1 : 1;
    }
  }
  return 0;
}

void Canonicalizer::canonical_encode_into(const Config& config,
                                          std::vector<std::int64_t>* out,
                                          std::vector<std::uint8_t>* perm,
                                          CanonScratch* scratch) const {
  if (group_.size() <= 1) {
    config.encode_into(out);
    if (perm != nullptr) perm->clear();
    return;
  }
  CanonScratch local;
  CanonScratch* s = scratch != nullptr ? scratch : &local;
  // *out starts as the identity encoding and serves as the running best;
  // the raw key is copied aside only when a cache needs it to outlive the
  // search.
  config.encode_into(out);
  CanonCache* cache = s->cache();
  Hash128 fp;
  if (cache != nullptr) {
    fp = hash_words_128(*out);
    s->raw_ = *out;
    if (cache->lookup(fp, s->raw_, out, perm)) {
      ++s->cache_hits;
      return;
    }
    ++s->cache_misses;
  }
  if (perm != nullptr) perm->clear();
  if (locals_pid_free_ && identity_minimal_(config)) {
    ++s->fast_path;
    if (cache != nullptr) cache->insert(fp, s->raw_, *out, {});
    return;
  }
  std::size_t best_g = 0;
  if (locals_pid_free_) {
    // Reset the pairwise proc-block memo for this canonicalization (2 marks
    // "not yet compared"; compares yield -1/0/1).
    const std::size_t n = static_cast<std::size_t>(spec_.process_count());
    s->pair_cmp_.assign(n * n, 2);
  }
  for (std::size_t g = 1; g < group_.size(); ++g) {
    const int cmp =
        best_g == 0 && locals_pid_free_
            ? compare_permuted_identity_(config, g, s)
            : compare_permuted_(config, g, *out,
                                /*best_is_identity=*/best_g == 0, s);
    if (cmp > 0) {
      ++s->prunes;
    } else if (cmp < 0) {
      // Rare: materialize the new best. Ties (cmp == 0) keep the earlier
      // winner, preserving the brute-force first-group-element semantics.
      encode_permuted_(config, g, out, s);
      best_g = g;
    }
  }
  std::vector<std::uint8_t> perm_local;
  std::vector<std::uint8_t>* perm_out = perm;
  if (best_g != 0) {
    if (perm_out == nullptr) perm_out = &perm_local;
    perm_out->assign(group_[best_g].begin(), group_[best_g].end());
  }
  if (cache != nullptr) {
    cache->insert(fp, s->raw_, *out,
                  best_g != 0 ? std::span<const std::uint8_t>(*perm_out)
                              : std::span<const std::uint8_t>());
  }
}

void Canonicalizer::canonicalize(Config* config,
                                 std::vector<std::uint8_t>* perm,
                                 CanonScratch* scratch) const {
  std::vector<std::int64_t> best;
  std::vector<std::uint8_t> best_perm;
  canonical_encode_into(*config, &best, &best_perm, scratch);
  if (!best_perm.empty()) {
    std::vector<int> as_int(best_perm.begin(), best_perm.end());
    apply_pid_permutation(*protocol_, as_int, config);
  }
  if (perm != nullptr) *perm = std::move(best_perm);
}

void Canonicalizer::brute_force_canonical_encode_into(
    const Config& config, std::vector<std::int64_t>* out,
    std::vector<std::uint8_t>* perm) const {
  config.encode_into(out);
  if (perm != nullptr) perm->clear();
  if (group_.size() <= 1) return;
  std::vector<std::int64_t> candidate;
  Config scratch;
  for (std::size_t g = 1; g < group_.size(); ++g) {
    scratch = config;
    apply_pid_permutation(*protocol_, group_[g], &scratch);
    scratch.encode_into(&candidate);
    // Same protocol, same shape: encodings are equal length, so plain
    // lexicographic comparison picks the canonical representative.
    if (candidate < *out) {
      std::swap(candidate, *out);
      if (perm != nullptr) perm->assign(group_[g].begin(), group_[g].end());
    }
  }
}

std::uint64_t Canonicalizer::orbit_size(const Config& config) const {
  if (group_.size() <= 1) return 1;
  // Orbit–stabilizer: |orbit| = |G| / |Stab|, and the stabilizer members
  // are exactly the group elements whose image encodes equal to the
  // identity image — detected by the same early-exit comparator the
  // canonical search uses (a non-member typically disagrees within a few
  // words).
  CanonScratch scratch;
  config.encode_into(&scratch.raw_);
  std::uint64_t stabilizer = 1;  // identity
  for (std::size_t g = 1; g < group_.size(); ++g) {
    if (compare_permuted_(config, g, scratch.raw_, /*best_is_identity=*/true,
                          &scratch) == 0) {
      ++stabilizer;
    }
  }
  return group_.size() / stabilizer;
}

}  // namespace lbsa::sim
