#include "sim/symmetry.h"

#include <algorithm>
#include <utility>

#include "base/check.h"
#include "sim/config.h"
#include "sim/protocol.h"

namespace lbsa::sim {
namespace {

// Generous backstop against accidental factorial blow-ups (S_8 = 40320 fits;
// nobody should canonicalize against a larger group element-by-element).
constexpr std::uint64_t kMaxGroupSize = 100'000;

}  // namespace

SymmetrySpec SymmetrySpec::none(int n) {
  SymmetrySpec spec;
  spec.orbit_of.resize(static_cast<std::size_t>(n));
  for (int p = 0; p < n; ++p) spec.orbit_of[static_cast<std::size_t>(p)] = p;
  return spec;
}

SymmetrySpec SymmetrySpec::full(int n) {
  SymmetrySpec spec;
  spec.orbit_of.assign(static_cast<std::size_t>(n), 0);
  return spec;
}

SymmetrySpec SymmetrySpec::by_value(const std::vector<std::int64_t>& keys,
                                    const std::vector<int>& fixed) {
  const int n = static_cast<int>(keys.size());
  SymmetrySpec spec;
  spec.orbit_of.assign(static_cast<std::size_t>(n), -1);
  std::vector<bool> is_fixed(static_cast<std::size_t>(n), false);
  for (int pid : fixed) {
    LBSA_CHECK(pid >= 0 && pid < n);
    is_fixed[static_cast<std::size_t>(pid)] = true;
  }
  int next_orbit = 0;
  for (int p = 0; p < n; ++p) {
    if (spec.orbit_of[static_cast<std::size_t>(p)] != -1) continue;
    spec.orbit_of[static_cast<std::size_t>(p)] = next_orbit;
    if (!is_fixed[static_cast<std::size_t>(p)]) {
      for (int q = p + 1; q < n; ++q) {
        if (spec.orbit_of[static_cast<std::size_t>(q)] == -1 &&
            !is_fixed[static_cast<std::size_t>(q)] &&
            keys[static_cast<std::size_t>(q)] ==
                keys[static_cast<std::size_t>(p)]) {
          spec.orbit_of[static_cast<std::size_t>(q)] = next_orbit;
        }
      }
    }
    ++next_orbit;
  }
  return spec;
}

bool SymmetrySpec::trivial() const {
  for (int p = 0; p < process_count(); ++p) {
    if (!is_singleton(p)) return false;
  }
  return true;
}

bool SymmetrySpec::is_singleton(int pid) const {
  const int id = orbit_of[static_cast<std::size_t>(pid)];
  for (int q = 0; q < process_count(); ++q) {
    if (q != pid && orbit_of[static_cast<std::size_t>(q)] == id) return false;
  }
  return true;
}

std::vector<std::vector<int>> symmetry_group(const SymmetrySpec& spec) {
  const int n = spec.process_count();
  // Bucket pids by orbit id, in first-seen order; members stay ascending.
  std::vector<int> seen_ids;
  std::vector<std::vector<int>> buckets;
  for (int p = 0; p < n; ++p) {
    const int id = spec.orbit_of[static_cast<std::size_t>(p)];
    std::size_t bucket = seen_ids.size();
    for (std::size_t i = 0; i < seen_ids.size(); ++i) {
      if (seen_ids[i] == id) {
        bucket = i;
        break;
      }
    }
    if (bucket == seen_ids.size()) {
      seen_ids.push_back(id);
      buckets.emplace_back();
    }
    buckets[bucket].push_back(p);
  }

  // For each non-singleton orbit, enumerate all arrangements of its members
  // (std::next_permutation from the sorted arrangement, so the identity
  // arrangement comes first and the order is deterministic).
  std::vector<std::vector<int>> members;
  std::vector<std::vector<std::vector<int>>> arrangements;
  std::uint64_t total = 1;
  for (const std::vector<int>& bucket : buckets) {
    if (bucket.size() < 2) continue;
    std::vector<std::vector<int>> arrs;
    std::vector<int> arr = bucket;
    do {
      arrs.push_back(arr);
      LBSA_CHECK_MSG(total * arrs.size() <= kMaxGroupSize,
                     "symmetry group too large to enumerate");
    } while (std::next_permutation(arr.begin(), arr.end()));
    total *= arrs.size();
    members.push_back(bucket);
    arrangements.push_back(std::move(arrs));
  }

  // Cartesian product over orbits (last orbit cycles fastest). With every
  // odometer digit at its first position the result is the identity.
  std::vector<std::vector<int>> group;
  group.reserve(static_cast<std::size_t>(total));
  std::vector<std::size_t> odometer(members.size(), 0);
  for (;;) {
    std::vector<int> perm(static_cast<std::size_t>(n));
    for (int p = 0; p < n; ++p) perm[static_cast<std::size_t>(p)] = p;
    for (std::size_t oi = 0; oi < members.size(); ++oi) {
      const std::vector<int>& arr = arrangements[oi][odometer[oi]];
      for (std::size_t j = 0; j < arr.size(); ++j) {
        perm[static_cast<std::size_t>(members[oi][j])] = arr[j];
      }
    }
    group.push_back(std::move(perm));
    std::size_t k = members.size();
    for (;;) {
      if (k == 0) return group;
      --k;
      if (++odometer[k] < arrangements[k].size()) break;
      odometer[k] = 0;
      if (k == 0) return group;
    }
  }
}

void apply_pid_permutation(const Protocol& protocol, std::span<const int> perm,
                           Config* config) {
  const std::size_t n = config->procs.size();
  LBSA_CHECK(perm.size() == n);
  std::vector<ProcessState> renamed(n);
  for (std::size_t p = 0; p < n; ++p) {
    ProcessState moved = std::move(config->procs[p]);
    protocol.rename_locals(perm, &moved.locals);
    renamed[static_cast<std::size_t>(perm[p])] = std::move(moved);
  }
  config->procs = std::move(renamed);
  const auto& types = protocol.objects();
  for (std::size_t i = 0; i < config->objects.size(); ++i) {
    types[i]->rename_pids(perm, &config->objects[i]);
  }
}

Canonicalizer::Canonicalizer(std::shared_ptr<const Protocol> protocol,
                             SymmetrySpec spec)
    : protocol_(std::move(protocol)), spec_(std::move(spec)) {
  LBSA_CHECK(protocol_ != nullptr);
  LBSA_CHECK_MSG(spec_.process_count() == protocol_->process_count(),
                 "SymmetrySpec size != protocol process count");
  group_ = symmetry_group(spec_);
  // Soundness gate: the whole group must fix the initial configuration
  // (otherwise "renamed runs" would be runs of a different instance). The
  // group is generated by transpositions of adjacent orbit members, so
  // checking those suffices — and catches unequal initial locals eagerly.
  const Config initial = initial_config(*protocol_);
  const int n = spec_.process_count();
  for (int p = 0; p < n; ++p) {
    for (int q = p + 1; q < n; ++q) {
      if (spec_.orbit_of[static_cast<std::size_t>(p)] !=
          spec_.orbit_of[static_cast<std::size_t>(q)]) {
        continue;
      }
      std::vector<int> transposition(static_cast<std::size_t>(n));
      for (int r = 0; r < n; ++r) {
        transposition[static_cast<std::size_t>(r)] = r;
      }
      std::swap(transposition[static_cast<std::size_t>(p)],
                transposition[static_cast<std::size_t>(q)]);
      Config swapped = initial;
      apply_pid_permutation(*protocol_, transposition, &swapped);
      LBSA_CHECK_MSG(swapped == initial,
                     "SymmetrySpec groups processes with distinct initial "
                     "configurations (unequal inputs?)");
    }
  }
}

void Canonicalizer::canonical_encode_into(
    const Config& config, std::vector<std::int64_t>* out,
    std::vector<std::uint8_t>* perm) const {
  config.encode_into(out);
  if (perm != nullptr) perm->clear();
  if (group_.size() <= 1) return;
  std::vector<std::int64_t> candidate;
  Config scratch;
  for (std::size_t g = 1; g < group_.size(); ++g) {
    scratch = config;
    apply_pid_permutation(*protocol_, group_[g], &scratch);
    scratch.encode_into(&candidate);
    // Same protocol, same shape: encodings are equal length, so plain
    // lexicographic comparison picks the canonical representative.
    if (candidate < *out) {
      std::swap(candidate, *out);
      if (perm != nullptr) perm->assign(group_[g].begin(), group_[g].end());
    }
  }
}

void Canonicalizer::canonicalize(Config* config,
                                 std::vector<std::uint8_t>* perm) const {
  std::vector<std::int64_t> best;
  std::vector<std::uint8_t> best_perm;
  canonical_encode_into(*config, &best, &best_perm);
  if (!best_perm.empty()) {
    std::vector<int> as_int(best_perm.begin(), best_perm.end());
    apply_pid_permutation(*protocol_, as_int, config);
  }
  if (perm != nullptr) *perm = std::move(best_perm);
}

std::uint64_t Canonicalizer::orbit_size(const Config& config) const {
  if (group_.size() <= 1) return 1;
  std::vector<std::vector<std::int64_t>> images;
  images.reserve(group_.size());
  std::vector<std::int64_t> enc;
  Config scratch;
  for (const std::vector<int>& perm : group_) {
    scratch = config;
    apply_pid_permutation(*protocol_, perm, &scratch);
    scratch.encode_into(&enc);
    images.push_back(enc);
  }
  std::sort(images.begin(), images.end());
  return static_cast<std::uint64_t>(
      std::unique(images.begin(), images.end()) - images.begin());
}

}  // namespace lbsa::sim
