#include "sim/trace.h"

#include <charconv>

namespace lbsa::sim {

std::string schedule_to_string(const Protocol& protocol,
                               const std::vector<Step>& steps) {
  std::string out = "# schedule for " + protocol.name() + " (" +
                    std::to_string(steps.size()) + " steps)\n";
  for (const Step& step : steps) {
    out += std::to_string(step.pid);
    if (step.outcome_choice != 0) {
      out += ":" + std::to_string(step.outcome_choice);
    }
    out += "  # " + step.to_string(protocol) + "\n";
  }
  return out;
}

std::string schedule_to_string(
    const std::vector<ScriptedAdversary::Choice>& schedule) {
  std::string out;
  for (const ScriptedAdversary::Choice& choice : schedule) {
    if (choice.crash) {
      out += '!';
      out += std::to_string(choice.pid);
    } else {
      out += std::to_string(choice.pid);
      if (choice.outcome != 0) {
        out += ':' + std::to_string(choice.outcome);
      }
    }
    out += '\n';
  }
  return out;
}

StatusOr<std::vector<ScriptedAdversary::Choice>> parse_schedule(
    const std::string& text) {
  std::vector<ScriptedAdversary::Choice> schedule;
  std::size_t pos = 0;
  int line_number = 0;
  while (pos < text.size()) {
    std::size_t end = text.find('\n', pos);
    if (end == std::string::npos) end = text.size();
    std::string_view line(text.data() + pos, end - pos);
    pos = end + 1;
    ++line_number;

    // Strip trailing comment and whitespace.
    if (const auto hash = line.find('#'); hash != std::string_view::npos) {
      line = line.substr(0, hash);
    }
    while (!line.empty() && (line.back() == ' ' || line.back() == '\t' ||
                             line.back() == '\r')) {
      line.remove_suffix(1);
    }
    while (!line.empty() && (line.front() == ' ' || line.front() == '\t')) {
      line.remove_prefix(1);
    }
    if (line.empty()) continue;

    ScriptedAdversary::Choice choice{0, 0, false};
    if (line.front() == '!') {
      choice.crash = true;
      line.remove_prefix(1);
    }
    const char* begin = line.data();
    const char* stop = line.data() + line.size();
    auto [after_pid, pid_err] = std::from_chars(begin, stop, choice.pid);
    if (pid_err != std::errc{} || choice.pid < 0) {
      return invalid_argument("schedule line " + std::to_string(line_number) +
                              ": expected pid");
    }
    if (choice.crash && after_pid != stop) {
      return invalid_argument("schedule line " + std::to_string(line_number) +
                              ": crash event takes no outcome");
    }
    if (after_pid != stop) {
      if (*after_pid != ':') {
        return invalid_argument("schedule line " +
                                std::to_string(line_number) +
                                ": expected ':' before outcome");
      }
      auto [after_outcome, outcome_err] =
          std::from_chars(after_pid + 1, stop, choice.outcome);
      if (outcome_err != std::errc{} || after_outcome != stop ||
          choice.outcome < 0) {
        return invalid_argument("schedule line " +
                                std::to_string(line_number) +
                                ": malformed outcome");
      }
    }
    schedule.push_back(choice);
  }
  return schedule;
}

StatusOr<Simulation> replay_schedule(
    std::shared_ptr<const Protocol> protocol,
    const std::vector<ScriptedAdversary::Choice>& schedule) {
  Simulation simulation(std::move(protocol));
  for (std::size_t i = 0; i < schedule.size(); ++i) {
    const auto [pid, outcome, crash] = schedule[i];
    if (crash) {
      if (pid < 0 || pid >= simulation.process_count()) {
        return failed_precondition("replay step " + std::to_string(i) +
                                   ": crash pid out of range");
      }
      simulation.crash(pid);
      continue;
    }
    if (pid < 0 || pid >= simulation.process_count()) {
      return failed_precondition("replay step " + std::to_string(i) +
                                 ": pid out of range");
    }
    if (!simulation.config().enabled(pid)) {
      return failed_precondition("replay step " + std::to_string(i) +
                                 ": process p" + std::to_string(pid) +
                                 " is not running");
    }
    const int outcomes =
        outcome_count(simulation.protocol(), simulation.config(), pid);
    if (outcome >= outcomes) {
      return failed_precondition("replay step " + std::to_string(i) +
                                 ": outcome choice out of range");
    }
    simulation.step(pid, outcome);
  }
  return simulation;
}

}  // namespace lbsa::sim
