// Trace serialization: schedules (the (pid, outcome) choice sequences that
// drive a Simulation) round-trip through a compact text format, so that any
// counterexample or interesting run can be saved, shared, and replayed
// exactly.
//
// Format: one step per line, `pid[:outcome]` (outcome omitted when 0);
// blank lines and lines starting with '#' are ignored.
//
//   # 3-DAC agreement counterexample
//   0
//   1:1
//   2
#ifndef LBSA_SIM_TRACE_H_
#define LBSA_SIM_TRACE_H_

#include <string>
#include <vector>

#include "base/status.h"
#include "sim/scheduler.h"
#include "sim/simulation.h"

namespace lbsa::sim {

// Serializes recorded steps as a replayable schedule (with a human-readable
// comment per step describing the action taken).
std::string schedule_to_string(const Protocol& protocol,
                               const std::vector<Step>& steps);

// Parses a schedule. Rejects malformed lines with INVALID_ARGUMENT.
StatusOr<std::vector<ScriptedAdversary::Choice>> parse_schedule(
    const std::string& text);

// Replays a schedule on a fresh simulation of `protocol`. Fails with
// FAILED_PRECONDITION if the schedule names a halted process or an
// out-of-range outcome at any point.
StatusOr<Simulation> replay_schedule(
    std::shared_ptr<const Protocol> protocol,
    const std::vector<ScriptedAdversary::Choice>& schedule);

}  // namespace lbsa::sim

#endif  // LBSA_SIM_TRACE_H_
