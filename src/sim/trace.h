// Trace serialization: schedules (the (pid, outcome) choice sequences that
// drive a Simulation) round-trip through a compact text format, so that any
// counterexample or interesting run can be saved, shared, and replayed
// exactly.
//
// Format: one event per line. A step is `pid[:outcome]` (outcome omitted
// when 0); a crash event is `!pid` (crash pid before the next step). Blank
// lines and lines starting with '#' are ignored.
//
//   # 3-DAC agreement counterexample
//   0
//   1:1
//   !2
//   2
#ifndef LBSA_SIM_TRACE_H_
#define LBSA_SIM_TRACE_H_

#include <string>
#include <vector>

#include "base/status.h"
#include "sim/scheduler.h"
#include "sim/simulation.h"

namespace lbsa::sim {

// Serializes recorded steps as a replayable schedule (with a human-readable
// comment per step describing the action taken).
std::string schedule_to_string(const Protocol& protocol,
                               const std::vector<Step>& steps);

// Serializes an explicit choice script — including crash events — in the
// canonical form of the text format: `pid[:outcome]` with outcome 0
// omitted, `!pid` for crashes, no comments. format → parse → format is the
// identity on canonical text, and parse(schedule_to_string(s)) == s for
// every script s.
std::string schedule_to_string(
    const std::vector<ScriptedAdversary::Choice>& schedule);

// Parses a schedule. Rejects malformed lines with INVALID_ARGUMENT.
StatusOr<std::vector<ScriptedAdversary::Choice>> parse_schedule(
    const std::string& text);

// Replays a schedule on a fresh simulation of `protocol`. Fails with
// FAILED_PRECONDITION if the schedule names a halted process or an
// out-of-range outcome at any point. Crash events are applied with
// Simulation::crash (idempotent on already-terminated processes); a crash
// of an out-of-range pid fails.
StatusOr<Simulation> replay_schedule(
    std::shared_ptr<const Protocol> protocol,
    const std::vector<ScriptedAdversary::Choice>& schedule);

}  // namespace lbsa::sim

#endif  // LBSA_SIM_TRACE_H_
