// Process-renaming symmetry: the machinery behind the explorer's quotient
// (symmetry-reduced) state graphs.
//
// The paper's protocols are symmetric under renaming of like processes —
// "indistinguishable to p" arguments rename whole runs — and the model
// checker exploits exactly that: a protocol declares which pids are
// interchangeable (a SymmetrySpec partition into orbits), and every
// explored configuration is replaced by the lexicographically-minimal
// member of its orbit before interning. The explorer then searches the
// quotient graph, which shrinks by up to the symmetry-group order.
//
// Contract for a protocol declaring a non-trivial SymmetrySpec:
//   1. pids in one orbit have identical initial locals (checked eagerly by
//      the Canonicalizer constructor);
//   2. next_action / on_response commute with renaming: renaming the pid
//      and rewriting pid-valued words (Protocol::rename_locals,
//      spec::ObjectType::rename_pids) maps steps to steps, outcome lists
//      elementwise in order — exercised end to end by the cross-validation
//      suite in tests/modelcheck/reduction_test.cc.
//
// The canonical search itself is branch-and-bound (docs/checking.md,
// "State-space reduction"): instead of materializing |G| full encodings per
// configuration, each candidate permutation's encoding is compared
// word-by-word against the best-so-far and abandoned at the first word that
// exceeds it. An optional per-worker CanonCache short-circuits repeat
// configurations entirely. Both are exact: the representative is always the
// true lexicographic minimum and the recorded permutation is the first
// group element achieving it, bit-identical to the brute-force reference
// (kept as Canonicalizer::brute_force_canonical_encode_into and
// cross-checked by tests/sim/symmetry_test.cc).
#ifndef LBSA_SIM_SYMMETRY_H_
#define LBSA_SIM_SYMMETRY_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <vector>

#include "base/hashing.h"

namespace lbsa::sim {

class Protocol;
struct Config;

// A partition of the pids [0, n) into orbits of interchangeable processes.
// orbit_of[pid] is the orbit id; pids sharing an id may be renamed into one
// another. Singleton orbits declare no symmetry for that pid.
struct SymmetrySpec {
  std::vector<int> orbit_of;

  // No symmetry: every pid its own orbit.
  static SymmetrySpec none(int n);
  // Full S_n: all pids interchangeable.
  static SymmetrySpec full(int n);
  // Groups pids with equal keys (e.g. equal inputs) into one orbit; pids in
  // `fixed` (e.g. a DAC's distinguished process) get singleton orbits
  // regardless of their key.
  static SymmetrySpec by_value(const std::vector<std::int64_t>& keys,
                               const std::vector<int>& fixed = {});

  int process_count() const { return static_cast<int>(orbit_of.size()); }
  // True iff every orbit is a singleton (the group is trivial).
  bool trivial() const;
  // True iff pid's orbit contains no other process.
  bool is_singleton(int pid) const;

  friend bool operator==(const SymmetrySpec&, const SymmetrySpec&) = default;
};

// All pid permutations the spec generates (every product of intra-orbit
// permutations), in a deterministic order with the identity first.
// perm[old_pid] = new_pid. LBSA_CHECKs against absurdly large groups, with
// a message naming the offending orbit sizes.
std::vector<std::vector<int>> symmetry_group(const SymmetrySpec& spec);

// Renames processes in place: process p's automaton state moves to slot
// perm[p], pid-valued words inside locals are rewritten via
// Protocol::rename_locals, and pid-valued words inside each object state via
// spec::ObjectType::rename_pids.
void apply_pid_permutation(const Protocol& protocol, std::span<const int> perm,
                           Config* config);

// A fixed-size, lossy, fingerprint-keyed map from a configuration's raw
// (identity) encoding to its canonical encoding plus discovery permutation.
// Successors of canonical states are overwhelmingly already-canonical or
// repeat across the frontier, so this converts most canonical searches into
// one hash + one word-compare + one copy.
//
// Semantics: direct-mapped on Hash128.lo, collisions evict, and a full
// raw-key verify guards every fingerprint match — a hit is always exact, a
// miss merely costs the search, so the cache can never change which
// representative is produced (the bit-identical-graph guarantee is
// preserved by construction). Payload words live in one flat arena; when it
// fills, the whole cache is wholesale-reset (epoch clear) rather than
// evicted piecemeal, keeping the hot path allocation-free.
//
// NOT thread-safe: one instance per worker (see CanonCachePool).
class CanonCache {
 public:
  // Total memory budget in bytes (slot headers + payload arena), clamped to
  // a small minimum. A few MiB holds every distinct frontier configuration
  // of the corpus-sized tasks.
  explicit CanonCache(std::size_t bytes);

  // Clears the cache iff `salt` differs from the last universe seen. The
  // salt fingerprints the (protocol, spec) pair (see
  // Canonicalizer::universe_salt), so one cache can be shared across the
  // hierarchy sweep's per-cell checks: reruns of the same universe stay
  // warm, a different universe can never serve stale entries.
  void ensure_universe(std::uint64_t salt);

  // Exact lookup: true iff `raw` is cached, filling *out (and *perm if
  // non-null; empty = identity). `fp` must be hash_words_128(raw).
  bool lookup(const Hash128& fp, std::span<const std::int64_t> raw,
              std::vector<std::int64_t>* out,
              std::vector<std::uint8_t>* perm) const;

  // Inserts (overwriting any slot collision; no-op if the payload is larger
  // than the whole arena). perm empty = identity.
  void insert(const Hash128& fp, std::span<const std::int64_t> raw,
              std::span<const std::int64_t> canon,
              std::span<const std::uint8_t> perm);

  // Observability / tests.
  std::size_t slot_count() const { return slots_.size(); }
  std::uint64_t epoch_resets() const { return epoch_resets_; }
  void clear();

 private:
  struct Slot {
    Hash128 fp;
    std::uint32_t offset = 0;     // into arena_: [raw | canon | perm words]
    std::uint32_t raw_len = 0;    // words in the raw encoding
    std::uint32_t canon_len = 0;  // words in the canonical encoding;
                                  // 0 = shared with raw (identity perm)
    std::uint32_t perm_len = 0;   // pids in perm (0 = identity)
    bool used = false;
  };

  std::vector<Slot> slots_;  // power-of-two, direct-mapped
  // Fixed-capacity payload store. Deliberately NOT a vector: the words are
  // left uninitialized (slot headers alone decide validity), so building a
  // multi-MiB cache costs an allocation, not a zero-fill — constructor cost
  // is on explore()'s critical path for short reduced runs.
  std::unique_ptr<std::int64_t[]> arena_;
  std::size_t arena_capacity_ = 0;  // words
  std::size_t arena_used_ = 0;
  std::uint64_t universe_salt_ = 0;
  std::uint64_t epoch_resets_ = 0;
};

// Hands out one CanonCache per worker index, shared across explorations.
// The per-worker caches are only ever touched by their worker, so no
// locking is needed beyond the lazy-creation path. Stick one instance into
// ExploreOptions::canon_cache_pool to keep caches warm across repeated
// explorations of the same universe (cross-checks, hierarchy-sweep cells).
class CanonCachePool {
 public:
  explicit CanonCachePool(std::size_t bytes_per_worker);

  // The cache for `worker` (created on first use), already universe-gated:
  // ensure_universe(salt) has been called on it.
  std::shared_ptr<CanonCache> worker_cache(std::size_t worker,
                                           std::uint64_t salt);

  std::size_t bytes_per_worker() const { return bytes_per_worker_; }

 private:
  std::mutex mu_;
  std::size_t bytes_per_worker_;
  std::vector<std::shared_ptr<CanonCache>> caches_;
};

// Per-worker reusable state for the canonical search: scratch buffers the
// hot loop reuses so steady-state canonicalization allocates nothing, an
// optional CanonCache, and tallies the engines publish as the
// `explore.canon.*` obs counters. NOT thread-safe: one per worker.
struct CanonScratch {
  // Tallies since construction (the engines drain these into obs counters).
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;
  std::uint64_t prunes = 0;     // candidate perms abandoned mid-encoding
  std::uint64_t fast_path = 0;  // configs proven identity-minimal cheaply

  // Attach / detach the orbit cache (null = search every time).
  void attach_cache(std::shared_ptr<CanonCache> cache) {
    cache_ = std::move(cache);
  }
  CanonCache* cache() const { return cache_.get(); }

 private:
  friend class Canonicalizer;
  std::shared_ptr<CanonCache> cache_;
  std::vector<std::int64_t> raw_;          // identity encoding of the input
  std::vector<std::int64_t> loc_scratch_;  // renamed locals buffer
  std::vector<std::int64_t> obj_scratch_;  // renamed object-state buffer
  std::vector<std::int8_t> pair_cmp_;      // memoized proc-block compares
};

// Precomputed canonicalization engine for one (protocol, spec) pair. All
// methods are const and thread-safe (the parallel explorer calls them
// concurrently from worker threads) — the per-worker mutable state lives in
// CanonScratch.
class Canonicalizer {
 public:
  // Checks the declaration eagerly: spec size matches the process count and
  // initial locals agree within every orbit.
  Canonicalizer(std::shared_ptr<const Protocol> protocol, SymmetrySpec spec);

  const SymmetrySpec& spec() const { return spec_; }
  const std::shared_ptr<const Protocol>& protocol() const { return protocol_; }
  std::size_t group_size() const { return group_.size(); }

  // Fingerprint of the (protocol, spec) universe this canonicalizer was
  // built for: protocol name + process count + orbit partition + object
  // shapes. Used to gate CanonCache sharing across explorations.
  std::uint64_t universe_salt() const { return universe_salt_; }

  // Writes the canonical encoding of config's orbit — the lexicographic
  // minimum of encode() over every group element — into *out without
  // mutating config. If perm != nullptr it receives the permutation that
  // achieves the minimum (empty = identity; ties resolve to the first group
  // element, identical to the brute-force reference). `scratch` carries the
  // reusable buffers, the optional orbit cache, and the activity tallies;
  // pass nullptr for a cold, uncached call (tests, one-shot callers).
  void canonical_encode_into(const Config& config,
                             std::vector<std::int64_t>* out,
                             std::vector<std::uint8_t>* perm = nullptr,
                             CanonScratch* scratch = nullptr) const;

  // Replaces *config with its canonical orbit representative; perm (if
  // non-null) receives the permutation applied (empty = identity).
  void canonicalize(Config* config,
                    std::vector<std::uint8_t>* perm = nullptr,
                    CanonScratch* scratch = nullptr) const;

  // The pre-rewrite reference implementation: applies every group element
  // to a copy and keeps the lexicographic minimum of the full encodings.
  // Kept as the test oracle the branch-and-bound path must match
  // bit-for-bit (tests/sim/symmetry_test.cc) and as the microbenchmark
  // baseline (bench/bench_canon.cpp). Not used by the explorer.
  void brute_force_canonical_encode_into(
      const Config& config, std::vector<std::int64_t>* out,
      std::vector<std::uint8_t>* perm = nullptr) const;

  // Number of distinct configurations in config's orbit (divides the group
  // order). Summed over quotient nodes this reproduces the full node count.
  // Computed as |G| / |stabilizer| with early-exit equality checks, so it
  // shares the incremental comparator with the canonical search.
  std::uint64_t orbit_size(const Config& config) const;

 private:
  // Three-way comparison of encode(group_[g] · config) against `best`,
  // built incrementally and abandoned at the first deciding word. When the
  // caller knows `best` is still the identity encoding, renaming-invariant
  // segments (slots group_[g] fixes, pid-free objects) compare equal by
  // construction and are skipped outright.
  int compare_permuted_(const Config& config, std::size_t g,
                        std::span<const std::int64_t> best,
                        bool best_is_identity, CanonScratch* scratch) const;
  // Fast-lane variant for the common state of the search — `best` is still
  // the identity encoding and locals are pid-free. The verdict for group
  // element g then follows from block-level facts alone: the first moved
  // slot whose (source, destination) process blocks differ decides, and a
  // full process-part tie falls through to renaming-object words. The
  // block compares are memoized in scratch->pair_cmp_ across all |G|-1
  // rivals of one canonicalization. Exactly equivalent to
  // compare_permuted_(config, g, identity, true, scratch).
  int compare_permuted_identity_(const Config& config, std::size_t g,
                                 CanonScratch* scratch) const;
  // Materializes encode(group_[g] · config) into *out (only called for the
  // rare candidates that beat the best-so-far).
  void encode_permuted_(const Config& config, std::size_t g,
                        std::vector<std::int64_t>* out,
                        CanonScratch* scratch) const;
  // True iff config is provably identity-minimal without touching the
  // group: within every orbit the per-process encodings are strictly
  // increasing by slot. Only sound when locals are pid-free.
  bool identity_minimal_(const Config& config) const;

  std::shared_ptr<const Protocol> protocol_;
  SymmetrySpec spec_;
  std::vector<std::vector<int>> group_;
  // group_inv_[g][slot] = the original pid that lands in `slot` under
  // group_[g] — the order the permuted encoding walks processes in.
  std::vector<std::vector<int>> group_inv_;
  // Orbits with >= 2 members, as ascending pid lists (fast-path input).
  std::vector<std::vector<int>> nontrivial_orbits_;
  // Per-object: does the type rewrite pids (ObjectType::renames_pids)?
  // Pid-free objects compare against their unrenamed state, zero copies.
  std::vector<bool> object_renames_pids_;
  bool locals_pid_free_ = true;
  std::uint64_t universe_salt_ = 0;
};

}  // namespace lbsa::sim

#endif  // LBSA_SIM_SYMMETRY_H_
