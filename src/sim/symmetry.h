// Process-renaming symmetry: the machinery behind the explorer's quotient
// (symmetry-reduced) state graphs.
//
// The paper's protocols are symmetric under renaming of like processes —
// "indistinguishable to p" arguments rename whole runs — and the model
// checker exploits exactly that: a protocol declares which pids are
// interchangeable (a SymmetrySpec partition into orbits), and every
// explored configuration is replaced by the lexicographically-minimal
// member of its orbit before interning. The explorer then searches the
// quotient graph, which shrinks by up to the symmetry-group order.
//
// Contract for a protocol declaring a non-trivial SymmetrySpec:
//   1. pids in one orbit have identical initial locals (checked eagerly by
//      the Canonicalizer constructor);
//   2. next_action / on_response commute with renaming: renaming the pid
//      and rewriting pid-valued words (Protocol::rename_locals,
//      spec::ObjectType::rename_pids) maps steps to steps, outcome lists
//      elementwise in order — exercised end to end by the cross-validation
//      suite in tests/modelcheck/reduction_test.cc.
#ifndef LBSA_SIM_SYMMETRY_H_
#define LBSA_SIM_SYMMETRY_H_

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

namespace lbsa::sim {

class Protocol;
struct Config;

// A partition of the pids [0, n) into orbits of interchangeable processes.
// orbit_of[pid] is the orbit id; pids sharing an id may be renamed into one
// another. Singleton orbits declare no symmetry for that pid.
struct SymmetrySpec {
  std::vector<int> orbit_of;

  // No symmetry: every pid its own orbit.
  static SymmetrySpec none(int n);
  // Full S_n: all pids interchangeable.
  static SymmetrySpec full(int n);
  // Groups pids with equal keys (e.g. equal inputs) into one orbit; pids in
  // `fixed` (e.g. a DAC's distinguished process) get singleton orbits
  // regardless of their key.
  static SymmetrySpec by_value(const std::vector<std::int64_t>& keys,
                               const std::vector<int>& fixed = {});

  int process_count() const { return static_cast<int>(orbit_of.size()); }
  // True iff every orbit is a singleton (the group is trivial).
  bool trivial() const;
  // True iff pid's orbit contains no other process.
  bool is_singleton(int pid) const;

  friend bool operator==(const SymmetrySpec&, const SymmetrySpec&) = default;
};

// All pid permutations the spec generates (every product of intra-orbit
// permutations), in a deterministic order with the identity first.
// perm[old_pid] = new_pid. LBSA_CHECKs against absurdly large groups.
std::vector<std::vector<int>> symmetry_group(const SymmetrySpec& spec);

// Renames processes in place: process p's automaton state moves to slot
// perm[p], pid-valued words inside locals are rewritten via
// Protocol::rename_locals, and pid-valued words inside each object state via
// spec::ObjectType::rename_pids.
void apply_pid_permutation(const Protocol& protocol, std::span<const int> perm,
                           Config* config);

// Precomputed canonicalization engine for one (protocol, spec) pair. All
// methods are const and thread-safe (the parallel explorer calls them
// concurrently from worker threads).
class Canonicalizer {
 public:
  // Checks the declaration eagerly: spec size matches the process count and
  // initial locals agree within every orbit.
  Canonicalizer(std::shared_ptr<const Protocol> protocol, SymmetrySpec spec);

  const SymmetrySpec& spec() const { return spec_; }
  std::size_t group_size() const { return group_.size(); }

  // Writes the canonical encoding of config's orbit — the lexicographic
  // minimum of encode() over every group element — into *out without
  // mutating config. If perm != nullptr it receives the permutation that
  // achieves the minimum (empty = identity).
  void canonical_encode_into(const Config& config,
                             std::vector<std::int64_t>* out,
                             std::vector<std::uint8_t>* perm = nullptr) const;

  // Replaces *config with its canonical orbit representative; perm (if
  // non-null) receives the permutation applied (empty = identity).
  void canonicalize(Config* config,
                    std::vector<std::uint8_t>* perm = nullptr) const;

  // Number of distinct configurations in config's orbit (divides the group
  // order). Summed over quotient nodes this reproduces the full node count.
  std::uint64_t orbit_size(const Config& config) const;

 private:
  std::shared_ptr<const Protocol> protocol_;
  SymmetrySpec spec_;
  std::vector<std::vector<int>> group_;
};

}  // namespace lbsa::sim

#endif  // LBSA_SIM_SYMMETRY_H_
