#include "sim/simulation.h"

#include <algorithm>

#include "base/check.h"
#include "obs/obs.h"

namespace lbsa::sim {

Simulation::Simulation(std::shared_ptr<const Protocol> protocol)
    : protocol_(std::move(protocol)) {
  LBSA_CHECK(protocol_ != nullptr);
  LBSA_CHECK(protocol_->process_count() >= 1);
  config_ = initial_config(*protocol_);
}

Step Simulation::step(int pid, int outcome_choice) {
  // Volatile: step totals depend on who drives the simulation (fuzz workers
  // keep stepping past the deterministic report cutoff).
  LBSA_OBS_COUNTER_ADD_V("sim.steps", 1);
  Step s = apply_step(*protocol_, &config_, pid, outcome_choice);
  history_.push_back(s);
  return s;
}

void Simulation::crash(int pid) {
  ProcessState& ps = config_.procs[static_cast<size_t>(pid)];
  if (ps.running()) {
    LBSA_OBS_COUNTER_ADD_V("sim.crashes", 1);
    ps.status = ProcStatus::kCrashed;
  }
}

RunResult Simulation::run(Adversary* adversary, const RunOptions& options) {
  LBSA_CHECK(adversary != nullptr);
  RunResult result;
  for (std::uint64_t i = 0; i < options.max_steps; ++i) {
    for (int pid : adversary->crashes(config_, i)) crash(pid);
    if (config_.halted()) {
      result.all_terminated = true;
      result.steps = i;
      return result;
    }
    const int pid = adversary->pick_process(config_, i);
    if (pid == Adversary::kStop) {
      result.stopped_by_adversary = true;
      result.steps = i;
      return result;
    }
    LBSA_CHECK_MSG(config_.enabled(pid), "adversary picked a halted process");
    const int outcomes = outcome_count(*protocol_, config_, pid);
    const int choice = adversary->pick_outcome(outcomes, i);
    LBSA_OBS_COUNTER_ADD_V("sim.steps", 1);
    Step s = apply_step(*protocol_, &config_, pid, choice);
    if (options.record_history) history_.push_back(s);
  }
  result.steps = options.max_steps;
  result.hit_step_limit = !config_.halted();
  result.all_terminated = config_.halted();
  return result;
}

std::vector<Value> Simulation::distinct_decisions() const {
  std::vector<Value> out;
  for (const ProcessState& ps : config_.procs) {
    if (ps.decided()) out.push_back(ps.decision);
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

Value Simulation::decision_of(int pid) const {
  const ProcessState& ps = config_.procs[static_cast<size_t>(pid)];
  return ps.decided() ? ps.decision : kNil;
}

void Simulation::reset() {
  config_ = initial_config(*protocol_);
  history_.clear();
}

std::string Simulation::dump() const {
  std::string out = protocol_->name() + ":\n";
  for (size_t pid = 0; pid < config_.procs.size(); ++pid) {
    out += "  p" + std::to_string(pid) + " " +
           config_.procs[pid].to_string() + "\n";
  }
  for (size_t i = 0; i < config_.objects.size(); ++i) {
    const auto& type = *protocol_->objects()[i];
    out += "  obj" + std::to_string(i) + " (" + type.name() +
           ") = " + type.state_to_string(config_.objects[i]) + "\n";
  }
  return out;
}

}  // namespace lbsa::sim
